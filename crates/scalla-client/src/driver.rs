//! The scripted client state machine.

use crate::directory::Directory;
use bytes::Bytes;
use scalla_obs::{Obs, SpanEvent, Stage, TraceId};
use scalla_proto::{Addr, ClientMsg, ErrCode, Msg, ServerMsg};
use scalla_simnet::{NetCtx, Node};
use scalla_util::Nanos;
use std::sync::Arc;

/// One scripted operation.
#[derive(Clone, Debug)]
pub enum ClientOp {
    /// Locate and open `path`, then close. The canonical redirection
    /// latency measurement.
    Open {
        /// File path.
        path: String,
        /// Open for write/create.
        write: bool,
    },
    /// Open, read `len` bytes at offset 0, close.
    OpenRead {
        /// File path.
        path: String,
        /// Bytes to read.
        len: u32,
    },
    /// Open for write, write `data`, close.
    Create {
        /// File path.
        path: String,
        /// Contents to write.
        data: Bytes,
    },
    /// Open (read), then stat at the data server, then close.
    Stat {
        /// File path.
        path: String,
    },
    /// Issue a prepare list to the manager (§III-B2).
    Prepare {
        /// Paths that will soon be needed.
        paths: Vec<String>,
    },
    /// Do nothing for the given duration (think time between requests).
    Sleep {
        /// Idle duration.
        duration: Nanos,
    },
    /// List a directory at the Cluster Name Space daemon (requires
    /// `ClientConfig::cns`).
    List {
        /// Directory path.
        dir: String,
    },
}

impl ClientOp {
    fn path(&self) -> &str {
        match self {
            ClientOp::Open { path, .. }
            | ClientOp::OpenRead { path, .. }
            | ClientOp::Create { path, .. }
            | ClientOp::Stat { path } => path,
            ClientOp::Prepare { .. } => "<prepare>",
            ClientOp::Sleep { .. } => "<sleep>",
            ClientOp::List { dir } => dir,
        }
    }

    fn is_write(&self) -> bool {
        matches!(self, ClientOp::Create { .. } | ClientOp::Open { write: true, .. })
    }
}

/// Terminal status of one operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpOutcome {
    /// Completed successfully.
    Ok,
    /// The cluster determined the file does not exist.
    NotFound,
    /// Failed with an error.
    Error(String),
    /// Exceeded the retry/wait budget.
    GaveUp,
}

/// Record of one completed operation.
#[derive(Clone, Debug)]
pub struct OpResult {
    /// Index in the script.
    pub op_index: usize,
    /// The path operated on.
    pub path: String,
    /// Start time.
    pub start: Nanos,
    /// Completion time.
    pub end: Nanos,
    /// Terminal status.
    pub outcome: OpOutcome,
    /// Redirect hops followed.
    pub redirects: u32,
    /// `Wait` back-offs honoured.
    pub waits: u32,
    /// Refresh recoveries performed.
    pub refreshes: u32,
    /// Name of the data server that served the request, if any.
    pub server: Option<String>,
    /// The trace id minted for this operation (0 in pre-trace records).
    pub trace_id: u64,
    /// Directory entries (List operations only).
    pub entries: Vec<String>,
    /// Bytes returned by the read (OpenRead operations only).
    pub data: Option<Bytes>,
}

impl OpResult {
    /// Wall-clock latency of the operation.
    pub fn latency(&self) -> Nanos {
        self.end.since(self.start)
    }
}

/// Retry behaviour for one operation: how many `Wait`/`Retry` verdicts to
/// honour, how the delay between attempts grows, and the hard wall-clock
/// deadline past which the operation is terminally abandoned.
///
/// Replaces the old flat `max_waits` counter: retriable verdicts (`Wait`,
/// `Retry`) back off exponentially (with jitter, capped) until either the
/// attempt budget or the per-op deadline runs out, and both exhaustion
/// paths end in a *terminal* [`OpOutcome::GaveUp`] — never a hang, never a
/// silent `Ok`.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Maximum `Wait`/`Retry` verdicts honoured per operation.
    pub max_waits: u32,
    /// Delay before the first retry; doubles per attempt.
    pub backoff_base: Nanos,
    /// Ceiling on the (jittered) backoff delay.
    pub backoff_cap: Nanos,
    /// Hard wall-clock budget per operation; checked at every retry
    /// decision point, exceeding it is terminal.
    pub op_deadline: Nanos,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_waits: 10,
            backoff_base: Nanos::from_millis(100),
            backoff_cap: Nanos::from_secs(5),
            op_deadline: Nanos::from_secs(600),
        }
    }
}

impl RetryPolicy {
    /// The client-side delay before retry `attempt` (1-based): exponential
    /// from `backoff_base`, ±25 % jitter from `rand`, capped at
    /// `backoff_cap`. A server's `Wait` hint still wins when longer.
    pub fn backoff(&self, attempt: u32, rand: u64) -> Nanos {
        let exp = attempt.saturating_sub(1).min(20);
        let base = self.backoff_base.0.saturating_mul(1 << exp);
        // 0.75x..1.25x, then cap — so the cap is a true ceiling.
        let jittered = (base / 1000).saturating_mul(750 + rand % 500);
        Nanos(jittered.min(self.backoff_cap.0).max(1))
    }

    /// Whether an operation started at `start` has used up its budget:
    /// either `waits` exceeded the attempt cap or `now` passed the per-op
    /// deadline.
    pub fn exhausted(&self, waits: u32, start: Nanos, now: Nanos) -> bool {
        waits > self.max_waits || now.since(start) >= self.op_deadline
    }
}

/// Client configuration.
#[derive(Clone)]
pub struct ClientConfig {
    /// Head nodes, tried in order on unresponsiveness ("one of many",
    /// §II-B2).
    pub managers: Vec<Addr>,
    /// Name ↔ address directory shared with the harness.
    pub directory: Arc<Directory>,
    /// The script to run.
    pub ops: Vec<ClientOp>,
    /// Delay before the first operation.
    pub start_delay: Nanos,
    /// Pause between operations.
    pub think_time: Nanos,
    /// Maximum refresh recoveries per operation.
    pub max_refreshes: u32,
    /// Wait/retry budget, backoff shape, and per-op deadline.
    pub retry: RetryPolicy,
    /// Per-request response timeout before manager failover.
    pub request_timeout: Nanos,
    /// Cluster Name Space daemon address for `List` operations.
    pub cns: Option<Addr>,
}

impl ClientConfig {
    /// Sensible defaults against a single manager.
    pub fn new(manager: Addr, directory: Arc<Directory>, ops: Vec<ClientOp>) -> ClientConfig {
        ClientConfig {
            managers: vec![manager],
            directory,
            ops,
            start_delay: Nanos::ZERO,
            think_time: Nanos::ZERO,
            max_refreshes: 3,
            retry: RetryPolicy::default(),
            request_timeout: Nanos::from_secs(20),
            cns: None,
        }
    }
}

mod tok {
    pub const NEXT_OP: u64 = 1;
    pub const RETRY: u64 = 2;
    pub const TIMEOUT_BASE: u64 = 1 << 33;
}

#[derive(Debug, PartialEq, Eq)]
enum Phase {
    Idle,
    Opening,
    Reading { handle: u64 },
    Writing { handle: u64 },
    Statting { handle: u64 },
    Closing,
    Preparing,
    Listing,
}

/// The scripted client node.
pub struct ClientNode {
    cfg: ClientConfig,
    results: Vec<OpResult>,
    op_index: usize,
    phase: Phase,
    // Current operation progress.
    start: Nanos,
    redirects: u32,
    waits: u32,
    refreshes: u32,
    target: Addr,
    manager_idx: usize,
    refresh_walk: bool,
    avoid: Option<String>,
    last_request: Option<Msg>,
    // Request-timeout bookkeeping: only the newest timeout token counts.
    timeout_gen: u64,
    // Timeouts suffered by the current operation (resets per op).
    timeouts_this_op: u32,
    pending_entries: Vec<String>,
    pending_data: Option<Bytes>,
    done: bool,
    // Trace id of the in-flight operation; reused across redirect legs,
    // retries, and refresh walks so every hop shares one trace.
    trace: u64,
    // When the most recent tracked request left, for the redirect-hop
    // latency histogram.
    hop_sent: Nanos,
    obs: Obs,
}

impl ClientNode {
    /// Creates a client. Results accumulate in [`ClientNode::results`].
    pub fn new(cfg: ClientConfig) -> ClientNode {
        let target = cfg.managers[0];
        ClientNode {
            cfg,
            results: Vec::new(),
            op_index: 0,
            phase: Phase::Idle,
            start: Nanos::ZERO,
            redirects: 0,
            waits: 0,
            refreshes: 0,
            target,
            manager_idx: 0,
            refresh_walk: false,
            avoid: None,
            last_request: None,
            timeout_gen: 0,
            timeouts_this_op: 0,
            pending_entries: Vec::new(),
            pending_data: None,
            done: false,
            trace: 0,
            hop_sent: Nanos::ZERO,
            obs: Obs::disabled(),
        }
    }

    /// Attaches an observability handle. Spans and redirect-hop timings
    /// start flowing; the disabled default costs one branch per probe.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Completed operation records.
    pub fn results(&self) -> &[OpResult] {
        &self.results
    }

    /// Whether the whole script has completed.
    pub fn is_done(&self) -> bool {
        self.done
    }

    fn manager(&self) -> Addr {
        self.cfg.managers[self.manager_idx % self.cfg.managers.len()]
    }

    fn current_op(&self) -> &ClientOp {
        &self.cfg.ops[self.op_index]
    }

    fn send_tracked(&mut self, ctx: &mut dyn NetCtx, to: Addr, msg: Msg) {
        self.last_request = Some(msg.clone());
        self.target = to;
        self.timeout_gen += 1;
        self.hop_sent = ctx.now();
        ctx.set_timer(self.cfg.request_timeout, tok::TIMEOUT_BASE + self.timeout_gen);
        ctx.set_trace(self.trace);
        ctx.send(to, msg);
    }

    fn begin_op(&mut self, ctx: &mut dyn NetCtx) {
        if self.op_index >= self.cfg.ops.len() {
            self.done = true;
            return;
        }
        self.start = ctx.now();
        self.redirects = 0;
        self.waits = 0;
        self.refreshes = 0;
        self.timeouts_this_op = 0;
        self.refresh_walk = false;
        self.avoid = None;
        // One nonzero trace id per operation; every redirect leg, retry and
        // refresh walk of this op rides the same id through the envelope.
        self.trace = ctx.rand_u64() | 1;
        let op = self.current_op().clone();
        match op {
            ClientOp::Sleep { duration } => {
                self.phase = Phase::Idle;
                // Record the sleep trivially and move on after it.
                self.results.push(OpResult {
                    op_index: self.op_index,
                    path: "<sleep>".into(),
                    start: self.start,
                    end: self.start + duration,
                    outcome: OpOutcome::Ok,
                    redirects: 0,
                    waits: 0,
                    refreshes: 0,
                    server: None,
                    trace_id: self.trace,
                    entries: Vec::new(),
                    data: None,
                });
                self.op_index += 1;
                ctx.set_timer(duration, tok::NEXT_OP);
            }
            ClientOp::Prepare { paths } => {
                self.phase = Phase::Preparing;
                let mgr = self.manager();
                self.send_tracked(ctx, mgr, ClientMsg::Prepare { paths }.into());
            }
            ClientOp::List { dir } => match self.cfg.cns {
                Some(cns) => {
                    self.phase = Phase::Listing;
                    self.send_tracked(ctx, cns, ClientMsg::List { dir }.into());
                }
                None => {
                    self.finish_op(ctx, OpOutcome::Error("no cns configured".into()), None);
                }
            },
            op => {
                self.phase = Phase::Opening;
                let msg = ClientMsg::Open {
                    path: op.path().to_string(),
                    write: op.is_write(),
                    refresh: false,
                    avoid: None,
                };
                let mgr = self.manager();
                self.send_tracked(ctx, mgr, msg.into());
            }
        }
    }

    fn finish_op(&mut self, ctx: &mut dyn NetCtx, outcome: OpOutcome, server: Option<String>) {
        // Cancel the outstanding timeout by bumping the generation.
        self.timeout_gen += 1;
        let end = ctx.now();
        if self.obs.is_enabled() {
            let verdict = match &outcome {
                OpOutcome::Ok => "ok",
                OpOutcome::NotFound => "notfound",
                OpOutcome::Error(_) => "error",
                OpOutcome::GaveUp => "gave_up",
            };
            self.obs.span(
                SpanEvent::new(TraceId(self.trace), ctx.me().0, "client_op")
                    .verdict(verdict)
                    .depth(self.redirects as u64)
                    .at(end.0)
                    .took(end.since(self.start).0),
            );
            if outcome == OpOutcome::GaveUp {
                self.obs.incident("give_up");
            }
        }
        self.results.push(OpResult {
            op_index: self.op_index,
            path: self.current_op().path().to_string(),
            start: self.start,
            end,
            outcome,
            redirects: self.redirects,
            waits: self.waits,
            refreshes: self.refreshes,
            server,
            trace_id: self.trace,
            entries: std::mem::take(&mut self.pending_entries),
            data: self.pending_data.take(),
        });
        self.op_index += 1;
        self.phase = Phase::Idle;
        if self.op_index >= self.cfg.ops.len() {
            self.done = true;
        } else if self.cfg.think_time.0 > 0 {
            ctx.set_timer(self.cfg.think_time, tok::NEXT_OP);
        } else {
            self.begin_op(ctx);
        }
    }

    /// Re-issue the current open walk from the manager with refresh+avoid
    /// (§III-C1 recovery).
    fn recover(&mut self, ctx: &mut dyn NetCtx, failing: Addr) {
        self.refreshes += 1;
        if self.refreshes > self.cfg.max_refreshes {
            self.finish_op(ctx, OpOutcome::GaveUp, None);
            return;
        }
        self.refresh_walk = true;
        self.avoid = self.cfg.directory.name_of(failing);
        self.phase = Phase::Opening;
        let msg = ClientMsg::Open {
            path: self.current_op().path().to_string(),
            write: self.current_op().is_write(),
            refresh: true,
            avoid: self.avoid.clone(),
        };
        let mgr = self.manager();
        self.send_tracked(ctx, mgr, msg.into());
    }

    /// Handles one retriable verdict (`Wait` or `Retry`): terminal
    /// `GaveUp` once the attempt budget or the per-op deadline is spent,
    /// otherwise re-arms the retry timer for the larger of the server's
    /// hint and this client's own (jittered, capped) exponential backoff.
    fn wait_retry(&mut self, ctx: &mut dyn NetCtx, hint_millis: Option<u64>) {
        self.waits += 1;
        if self.cfg.retry.exhausted(self.waits, self.start, ctx.now()) {
            self.finish_op(ctx, OpOutcome::GaveUp, None);
            return;
        }
        let backoff = self.cfg.retry.backoff(self.waits, ctx.rand_u64());
        let hint = Nanos::from_millis(hint_millis.unwrap_or(0));
        ctx.set_timer(backoff.max(hint), tok::RETRY);
    }

    fn on_open_ok(&mut self, ctx: &mut dyn NetCtx, handle: u64) {
        let op = self.current_op().clone();
        let server = self.target;
        match op {
            ClientOp::Open { .. } => {
                self.phase = Phase::Closing;
                self.send_tracked(ctx, server, ClientMsg::Close { handle }.into());
            }
            ClientOp::OpenRead { len, .. } => {
                self.phase = Phase::Reading { handle };
                self.send_tracked(ctx, server, ClientMsg::Read { handle, offset: 0, len }.into());
            }
            ClientOp::Create { data, .. } => {
                self.phase = Phase::Writing { handle };
                self.send_tracked(ctx, server, ClientMsg::Write { handle, offset: 0, data }.into());
            }
            ClientOp::Stat { path } => {
                self.phase = Phase::Statting { handle };
                self.send_tracked(ctx, server, ClientMsg::Stat { path }.into());
            }
            ClientOp::Prepare { .. } | ClientOp::Sleep { .. } | ClientOp::List { .. } => {
                unreachable!("no open phase")
            }
        }
    }
}

impl Node for ClientNode {
    fn on_start(&mut self, ctx: &mut dyn NetCtx) {
        if self.cfg.start_delay.0 > 0 {
            ctx.set_timer(self.cfg.start_delay, tok::NEXT_OP);
        } else {
            self.begin_op(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut dyn NetCtx, from: Addr, msg: Msg) {
        if self.done || self.phase == Phase::Idle || from != self.target {
            // Stale response: an abandoned target, a finished op (duplicate
            // delivery of the reply that completed it), or a reply landing
            // inside a sleep/think gap when nothing is outstanding.
            self.obs.count("scalla_client_discards_total", &[("kind", "stale_reply")], 1);
            return;
        }
        let Msg::Server(reply) = msg else { return };
        match reply {
            ServerMsg::Redirect { host } => {
                self.redirects += 1;
                if self.obs.stage_sample(Stage::RedirectHop) {
                    self.obs.record_stage(Stage::RedirectHop, ctx.now().since(self.hop_sent).0);
                }
                match self.cfg.directory.addr_of(&host) {
                    Some(addr) => {
                        let msg = ClientMsg::Open {
                            path: self.current_op().path().to_string(),
                            write: self.current_op().is_write(),
                            refresh: self.refresh_walk,
                            avoid: self.avoid.clone(),
                        };
                        self.send_tracked(ctx, addr, msg.into());
                    }
                    None => {
                        self.finish_op(ctx, OpOutcome::Error(format!("unknown host {host}")), None)
                    }
                }
            }
            ServerMsg::Wait { millis } => self.wait_retry(ctx, Some(millis)),
            ServerMsg::OpenOk { handle } => {
                if self.phase == Phase::Opening {
                    self.on_open_ok(ctx, handle);
                }
            }
            ServerMsg::Data { ref data } if matches!(self.phase, Phase::Reading { .. }) => {
                self.pending_data = Some(data.clone());
                let Phase::Reading { handle } = self.phase else { unreachable!() };
                self.phase = Phase::Closing;
                let server = self.target;
                self.send_tracked(ctx, server, ClientMsg::Close { handle }.into());
            }
            ServerMsg::Data { .. } | ServerMsg::WriteOk { .. } | ServerMsg::StatOk { .. } => {
                let handle = match self.phase {
                    Phase::Reading { handle }
                    | Phase::Writing { handle }
                    | Phase::Statting { handle } => handle,
                    _ => return,
                };
                self.phase = Phase::Closing;
                let server = self.target;
                self.send_tracked(ctx, server, ClientMsg::Close { handle }.into());
            }
            ServerMsg::CloseOk => {
                if self.phase == Phase::Closing {
                    let server = self.cfg.directory.name_of(self.target);
                    self.finish_op(ctx, OpOutcome::Ok, server);
                }
            }
            ServerMsg::PrepareOk => {
                if self.phase == Phase::Preparing {
                    self.finish_op(ctx, OpOutcome::Ok, None);
                }
            }
            ServerMsg::ListOk { entries } => {
                if self.phase == Phase::Listing {
                    self.pending_entries = entries;
                    self.finish_op(ctx, OpOutcome::Ok, None);
                }
            }
            ServerMsg::Error { code, detail } => {
                let at_manager = self.cfg.managers.contains(&self.target);
                match code {
                    ErrCode::NotFound if at_manager => {
                        self.finish_op(ctx, OpOutcome::NotFound, None)
                    }
                    // Stale redirect or I/O failure at a data server:
                    // refresh recovery through the manager (§III-C1).
                    ErrCode::NotFound | ErrCode::IoError => {
                        let failing = self.target;
                        self.recover(ctx, failing);
                    }
                    ErrCode::Retry => self.wait_retry(ctx, None),
                    _ => self.finish_op(ctx, OpOutcome::Error(detail), None),
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn NetCtx, token: u64) {
        if self.done {
            return;
        }
        match token {
            tok::NEXT_OP => self.begin_op(ctx),
            tok::RETRY => {
                if self.phase == Phase::Idle {
                    // The op finished while this retry was pending.
                    self.obs.count("scalla_client_discards_total", &[("kind", "stale_retry")], 1);
                    return;
                }
                if let Some(msg) = self.last_request.clone() {
                    let target = self.target;
                    self.send_tracked(ctx, target, msg);
                }
            }
            t if t >= tok::TIMEOUT_BASE => {
                if t - tok::TIMEOUT_BASE != self.timeout_gen || self.phase == Phase::Idle {
                    // Superseded timeout, or nothing outstanding.
                    self.obs.count("scalla_client_discards_total", &[("kind", "stale_timeout")], 1);
                    return;
                }
                // The target stopped answering. Fail over to the next
                // manager and restart the walk from the top. The budget is
                // per operation: two passes over the manager list.
                self.obs.incident("timeout");
                self.timeouts_this_op += 1;
                if self.timeouts_this_op as usize > self.cfg.managers.len() * 2
                    || ctx.now().since(self.start) >= self.cfg.retry.op_deadline
                {
                    self.finish_op(ctx, OpOutcome::GaveUp, None);
                    return;
                }
                if self.target == self.manager() {
                    // The manager itself is unresponsive: advance to the
                    // next replica. A dead data server just restarts the
                    // walk at the current (healthy) manager.
                    self.manager_idx += 1;
                }
                self.phase = Phase::Opening;
                let msg = ClientMsg::Open {
                    path: self.current_op().path().to_string(),
                    write: self.current_op().is_write(),
                    refresh: self.refresh_walk,
                    avoid: self.avoid.clone(),
                };
                let mgr = self.manager();
                self.send_tracked(ctx, mgr, msg.into());
            }
            _ => {}
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalla_simnet::{LatencyModel, SimNet};

    /// A stub head node: redirects every open for "/data/*" to "leaf",
    /// reports NotFound for anything else.
    struct StubManager;
    impl Node for StubManager {
        fn on_message(&mut self, ctx: &mut dyn NetCtx, from: Addr, msg: Msg) {
            if let Msg::Client(ClientMsg::Open { path, .. }) = msg {
                if path.starts_with("/data/") {
                    ctx.send(from, ServerMsg::Redirect { host: "leaf".into() }.into());
                } else {
                    ctx.send(
                        from,
                        ServerMsg::Error { code: ErrCode::NotFound, detail: path }.into(),
                    );
                }
            } else if let Msg::Client(ClientMsg::Prepare { .. }) = msg {
                ctx.send(from, ServerMsg::PrepareOk.into());
            }
        }
    }

    /// A stub data server: opens anything, serves 3 bytes, closes.
    struct StubLeaf {
        fail_first_open: bool,
    }
    impl Node for StubLeaf {
        fn on_message(&mut self, ctx: &mut dyn NetCtx, from: Addr, msg: Msg) {
            match msg {
                Msg::Client(ClientMsg::Open { .. }) => {
                    if self.fail_first_open {
                        self.fail_first_open = false;
                        ctx.send(
                            from,
                            ServerMsg::Error { code: ErrCode::IoError, detail: "disk".into() }
                                .into(),
                        );
                    } else {
                        ctx.send(from, ServerMsg::OpenOk { handle: 1 }.into());
                    }
                }
                Msg::Client(ClientMsg::Read { len, .. }) => {
                    ctx.send(
                        from,
                        ServerMsg::Data { data: Bytes::from(vec![0u8; len.min(3) as usize]) }
                            .into(),
                    );
                }
                Msg::Client(ClientMsg::Close { .. }) => {
                    ctx.send(from, ServerMsg::CloseOk.into());
                }
                _ => {}
            }
        }
    }

    fn run_script(ops: Vec<ClientOp>, fail_first_open: bool) -> Vec<OpResult> {
        let mut net = SimNet::new(LatencyModel::fixed(Nanos::from_micros(20)), 1);
        let dir = Arc::new(Directory::new());
        let mgr = net.add_node(Box::new(StubManager));
        let leaf = net.add_node(Box::new(StubLeaf { fail_first_open }));
        dir.register("mgr", mgr);
        dir.register("leaf", leaf);
        let client =
            net.add_node(Box::new(ClientNode::new(ClientConfig::new(mgr, dir.clone(), ops))));
        net.start();
        net.run_until(Nanos::from_secs(60));
        let node = net.node_mut(client).as_any_mut().unwrap();
        node.downcast_ref::<ClientNode>().unwrap().results().to_vec()
    }

    #[test]
    fn open_walk_records_latency_and_hops() {
        let results =
            run_script(vec![ClientOp::Open { path: "/data/f".into(), write: false }], false);
        assert_eq!(results.len(), 1);
        let r = &results[0];
        assert_eq!(r.outcome, OpOutcome::Ok);
        assert_eq!(r.redirects, 1);
        assert_eq!(r.server.as_deref(), Some("leaf"));
        // 4 messages on the walk (open->redirect, open->ok) + close pair
        // = 6 hops x 20 µs.
        assert_eq!(r.latency(), Nanos::from_micros(120));
    }

    #[test]
    fn openread_roundtrip() {
        let results =
            run_script(vec![ClientOp::OpenRead { path: "/data/f".into(), len: 3 }], false);
        assert_eq!(results[0].outcome, OpOutcome::Ok);
    }

    #[test]
    fn notfound_at_manager_is_terminal() {
        let results =
            run_script(vec![ClientOp::Open { path: "/ghost".into(), write: false }], false);
        assert_eq!(results[0].outcome, OpOutcome::NotFound);
        assert_eq!(results[0].refreshes, 0);
    }

    #[test]
    fn io_error_at_server_triggers_refresh_recovery() {
        let results =
            run_script(vec![ClientOp::Open { path: "/data/f".into(), write: false }], true);
        let r = &results[0];
        assert_eq!(r.outcome, OpOutcome::Ok);
        assert_eq!(r.refreshes, 1, "one recovery walk");
        assert_eq!(r.redirects, 2, "redirected twice (initial + recovery)");
    }

    #[test]
    fn script_runs_sequentially_with_prepare_and_sleep() {
        let results = run_script(
            vec![
                ClientOp::Prepare { paths: vec!["/data/a".into()] },
                ClientOp::Sleep { duration: Nanos::from_millis(5) },
                ClientOp::Open { path: "/data/a".into(), write: false },
            ],
            false,
        );
        assert_eq!(results.len(), 3);
        assert!(results.iter().all(|r| r.outcome == OpOutcome::Ok));
        // Ordering: each op starts no earlier than the previous ended.
        assert!(results[2].start >= results[1].end);
    }

    #[test]
    fn retry_backoff_doubles_caps_and_jitters() {
        let p = RetryPolicy::default();
        // rand=250 -> jitter factor exactly 1.0, so the doubling is exact.
        assert_eq!(p.backoff(1, 250), Nanos::from_millis(100));
        assert_eq!(p.backoff(2, 250), Nanos::from_millis(200));
        assert_eq!(p.backoff(3, 250), Nanos::from_millis(400));
        // Attempt 10 would be 51.2s un-capped; the cap is a hard ceiling
        // even at maximum jitter.
        assert_eq!(p.backoff(10, 499), p.backoff_cap);
        assert_eq!(p.backoff(u32::MAX, 499), p.backoff_cap);
        // Jitter stays within [0.75x, 1.25x) of the nominal delay.
        for rand in [0u64, 123, 321, 499, u64::MAX] {
            let d = p.backoff(2, rand).0;
            assert!((150_000_000..250_000_000).contains(&d), "attempt 2 jitter {d}");
        }
        // Never zero, even with a degenerate base.
        let tiny = RetryPolicy { backoff_base: Nanos(1), ..RetryPolicy::default() };
        assert!(tiny.backoff(1, 0).0 >= 1);
    }

    #[test]
    fn wait_budget_exhaustion_is_terminal_gave_up() {
        // A manager that answers every request with Wait never lets the op
        // finish; the retry budget must turn that into a terminal GaveUp
        // rather than an endless wait loop.
        struct AlwaysWait;
        impl Node for AlwaysWait {
            fn on_message(&mut self, ctx: &mut dyn NetCtx, from: Addr, msg: Msg) {
                if matches!(msg, Msg::Client(_)) {
                    ctx.send(from, ServerMsg::Wait { millis: 5 }.into());
                }
            }
        }
        let mut net = SimNet::new(LatencyModel::fixed(Nanos::from_micros(20)), 1);
        let dir = Arc::new(Directory::new());
        let mgr = net.add_node(Box::new(AlwaysWait));
        let mut cfg = ClientConfig::new(
            mgr,
            dir.clone(),
            vec![ClientOp::Open { path: "/data/f".into(), write: false }],
        );
        cfg.retry.max_waits = 3;
        cfg.retry.backoff_base = Nanos::from_millis(1);
        let client = net.add_node(Box::new(ClientNode::new(cfg)));
        net.start();
        net.run_until(Nanos::from_secs(60));
        let node = net.node_mut(client).as_any_mut().unwrap();
        let results = node.downcast_ref::<ClientNode>().unwrap().results();
        assert_eq!(results.len(), 1, "op must terminate");
        assert_eq!(results[0].outcome, OpOutcome::GaveUp);
        assert_eq!(results[0].waits, 4, "budget of 3 plus the exhausting attempt");
    }

    #[test]
    fn op_deadline_bounds_wait_loops() {
        // Huge Wait hints with a generous wait budget: the per-op deadline
        // must still force termination.
        struct SlowWait;
        impl Node for SlowWait {
            fn on_message(&mut self, ctx: &mut dyn NetCtx, from: Addr, msg: Msg) {
                if matches!(msg, Msg::Client(_)) {
                    ctx.send(from, ServerMsg::Wait { millis: 10_000 }.into());
                }
            }
        }
        let mut net = SimNet::new(LatencyModel::fixed(Nanos::from_micros(20)), 1);
        let dir = Arc::new(Directory::new());
        let mgr = net.add_node(Box::new(SlowWait));
        let mut cfg = ClientConfig::new(
            mgr,
            dir.clone(),
            vec![ClientOp::Open { path: "/data/f".into(), write: false }],
        );
        cfg.retry.max_waits = 1000;
        cfg.retry.op_deadline = Nanos::from_secs(15);
        let client = net.add_node(Box::new(ClientNode::new(cfg)));
        net.start();
        net.run_until(Nanos::from_secs(120));
        let node = net.node_mut(client).as_any_mut().unwrap();
        let results = node.downcast_ref::<ClientNode>().unwrap().results();
        assert_eq!(results.len(), 1, "op must terminate");
        assert_eq!(results[0].outcome, OpOutcome::GaveUp);
        let elapsed = results[0].end.since(results[0].start);
        assert!(elapsed >= Nanos::from_secs(15), "deadline honoured, took {elapsed:?}");
        assert!(elapsed < Nanos::from_secs(40), "gave up promptly, took {elapsed:?}");
    }

    #[test]
    fn manager_failover_on_silence() {
        // Primary manager is a black hole; secondary answers.
        struct BlackHole;
        impl Node for BlackHole {
            fn on_message(&mut self, _: &mut dyn NetCtx, _: Addr, _: Msg) {}
        }
        let mut net = SimNet::new(LatencyModel::fixed(Nanos::from_micros(20)), 1);
        let dir = Arc::new(Directory::new());
        let dead = net.add_node(Box::new(BlackHole));
        let live = net.add_node(Box::new(StubManager));
        let leaf = net.add_node(Box::new(StubLeaf { fail_first_open: false }));
        dir.register("leaf", leaf);
        let mut cfg = ClientConfig::new(
            dead,
            dir.clone(),
            vec![ClientOp::Open { path: "/data/f".into(), write: false }],
        );
        cfg.managers = vec![dead, live];
        cfg.request_timeout = Nanos::from_secs(1);
        let client = net.add_node(Box::new(ClientNode::new(cfg)));
        net.start();
        net.run_until(Nanos::from_secs(30));
        let node = net.node_mut(client).as_any_mut().unwrap();
        let results = node.downcast_ref::<ClientNode>().unwrap().results();
        assert_eq!(results[0].outcome, OpOutcome::Ok, "failover must succeed");
        assert!(results[0].latency() >= Nanos::from_secs(1), "paid the timeout");
    }

    #[test]
    fn phase_guard_discards_are_counted() {
        struct NullCtx;
        impl NetCtx for NullCtx {
            fn now(&self) -> Nanos {
                Nanos::ZERO
            }
            fn me(&self) -> Addr {
                Addr(9)
            }
            fn send(&mut self, _: Addr, _: Msg) {}
            fn set_timer(&mut self, _: Nanos, _: u64) {}
            fn rand_u64(&mut self) -> u64 {
                7
            }
        }
        let obs = Obs::enabled();
        let dir = Arc::new(Directory::new());
        let mut node = ClientNode::new(ClientConfig::new(
            Addr(0),
            dir,
            vec![ClientOp::Sleep { duration: Nanos::from_secs(1) }],
        ));
        node.set_obs(obs.clone());
        let mut ctx = NullCtx;
        // The sleep op leaves the client alive but Idle, so every arrival
        // below hits a phase guard.
        node.on_start(&mut ctx);
        node.on_message(&mut ctx, Addr(5), ServerMsg::CloseOk.into());
        node.on_timer(&mut ctx, tok::RETRY);
        node.on_timer(&mut ctx, tok::TIMEOUT_BASE + 99);
        let text = obs.registry().prometheus_text();
        for kind in ["stale_reply", "stale_retry", "stale_timeout"] {
            let needle = format!("scalla_client_discards_total{{kind=\"{kind}\"}} 1");
            assert!(text.contains(&needle), "missing {needle} in:\n{text}");
        }
    }
}
