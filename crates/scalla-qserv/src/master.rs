//! Master-side dispatch: scatter tasks, gather results — all through the
//! Scalla file abstraction.
//!
//! "Masters dispatch work to nodes hosting the data of interest, and
//! retrieve results similarly" (§IV-B). The master never configures or
//! enumerates workers: it opens `/chunk/<p>/task-<id>` for write, and
//! Scalla's write allocation lands the file on a worker exporting
//! `/chunk/<p>` — the data-to-host mapping the paper describes. Results
//! come back by opening `/chunk/<p>/result-<id>` for read; only the worker
//! that materialized the result responds to the locate.

use crate::query::{Query, QueryResult};
use bytes::Bytes;
use scalla_client::{ClientOp, OpOutcome, OpResult};

/// Path of the task file for `(partition, query id)`.
pub fn task_path(partition: u32, qid: u64) -> String {
    format!("/chunk/{partition}/task-{qid}")
}

/// Path of the result file for `(partition, query id)`.
pub fn result_path(partition: u32, qid: u64) -> String {
    format!("/chunk/{partition}/result-{qid}")
}

/// Extracts the partition number from a task path, if it is one.
pub fn task_partition(path: &str) -> Option<u32> {
    let rest = path.strip_prefix("/chunk/")?;
    let (part, file) = rest.split_once('/')?;
    if !file.starts_with("task-") {
        return None;
    }
    part.parse().ok()
}

/// Maps `/chunk/<p>/task-<id>` to its result path.
pub fn result_path_for_task(task: &str) -> String {
    task.replacen("/task-", "/result-", 1)
}

/// Builds the master's scripted scatter/gather for `query` over
/// `partitions`: for each partition, create the task file (write payload),
/// then read the result file back.
///
/// The returned script runs on a standard
/// [`ClientNode`](scalla_client::ClientNode) — the master *is* just a
/// Scalla client, which is the point of §IV-B.
pub fn scatter_script(query: &Query, partitions: &[u32], qid: u64) -> Vec<ClientOp> {
    let payload = Bytes::from(query.encode());
    let mut ops = Vec::with_capacity(partitions.len() * 2);
    for &p in partitions {
        ops.push(ClientOp::Create { path: task_path(p, qid), data: payload.clone() });
    }
    for &p in partitions {
        ops.push(ClientOp::OpenRead { path: result_path(p, qid), len: 1 << 20 });
    }
    ops
}

/// Decodes the gathered per-partition results from the workers' result
/// files and merges them into the global answer.
///
/// `read_result` maps a result path to its file contents (the harness
/// fetches them from the workers' stores after the script completes, or a
/// streaming client could capture `Data` payloads directly).
pub fn gather_results(
    partitions: &[u32],
    qid: u64,
    mut read_result: impl FnMut(&str) -> Option<Vec<u8>>,
) -> Option<QueryResult> {
    let mut per_chunk = Vec::with_capacity(partitions.len());
    for &p in partitions {
        let path = result_path(p, qid);
        let bytes = read_result(&path)?;
        let text = String::from_utf8(bytes).ok()?;
        per_chunk.push(QueryResult::decode(&text)?);
    }
    QueryResult::merge(&per_chunk)
}

/// Convenience: checks a completed scatter script's records — every create
/// and every read must have succeeded.
pub fn scatter_succeeded(results: &[OpResult]) -> bool {
    !results.is_empty() && results.iter().all(|r| r.outcome == OpOutcome::Ok)
}

/// An autonomous Qserv master: a [`Node`] that scatters a query, gathers
/// the per-chunk results *through Scalla reads*, and merges them in-node.
/// Because it is just a node, it runs identically under the simulator, the
/// threaded runtime, and the TCP runtime.
///
/// [`Node`]: scalla_simnet::Node
pub struct QservMasterNode {
    inner: scalla_client::ClientNode,
    partitions: Vec<u32>,
    qid: u64,
    answer: Option<QueryResult>,
    failed: bool,
}

impl QservMasterNode {
    /// Builds a master dispatching `query` over `partitions` via the
    /// manager at `cfg.managers[0]`. The scatter script is installed into
    /// the provided client configuration (its `ops` are replaced).
    pub fn new(
        mut cfg: scalla_client::ClientConfig,
        query: &Query,
        partitions: Vec<u32>,
        qid: u64,
    ) -> QservMasterNode {
        cfg.ops = scatter_script(query, &partitions, qid);
        QservMasterNode {
            inner: scalla_client::ClientNode::new(cfg),
            partitions,
            qid,
            answer: None,
            failed: false,
        }
    }

    /// The merged answer, once every partition reported.
    pub fn answer(&self) -> Option<&QueryResult> {
        self.answer.as_ref()
    }

    /// Whether the dispatch failed (an op errored or a result would not
    /// decode).
    pub fn failed(&self) -> bool {
        self.failed
    }

    /// The underlying client records (diagnostics).
    pub fn records(&self) -> &[OpResult] {
        self.inner.results()
    }

    fn try_finalize(&mut self) {
        if !self.inner.is_done() || self.answer.is_some() || self.failed {
            return;
        }
        let results = self.inner.results();
        if results.iter().any(|r| r.outcome != OpOutcome::Ok) {
            self.failed = true;
            return;
        }
        let gathered = gather_results(&self.partitions, self.qid, |path| {
            results
                .iter()
                .find(|r| r.path == path)
                .and_then(|r| r.data.as_ref())
                .map(|b| b.to_vec())
        });
        match gathered {
            Some(answer) => self.answer = Some(answer),
            None => self.failed = true,
        }
    }
}

impl scalla_simnet::Node for QservMasterNode {
    fn on_start(&mut self, ctx: &mut dyn scalla_simnet::NetCtx) {
        scalla_simnet::Node::on_start(&mut self.inner, ctx);
    }
    fn on_message(
        &mut self,
        ctx: &mut dyn scalla_simnet::NetCtx,
        from: scalla_proto::Addr,
        msg: scalla_proto::Msg,
    ) {
        scalla_simnet::Node::on_message(&mut self.inner, ctx, from, msg);
        self.try_finalize();
    }
    fn on_timer(&mut self, ctx: &mut dyn scalla_simnet::NetCtx, token: u64) {
        scalla_simnet::Node::on_timer(&mut self.inner, ctx, token);
        self.try_finalize();
    }
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::ChunkStore;

    #[test]
    fn path_scheme_roundtrips() {
        assert_eq!(task_path(12, 7), "/chunk/12/task-7");
        assert_eq!(result_path(12, 7), "/chunk/12/result-7");
        assert_eq!(task_partition("/chunk/12/task-7"), Some(12));
        assert_eq!(task_partition("/chunk/12/result-7"), None);
        assert_eq!(task_partition("/data/run1/f.root"), None);
        assert_eq!(result_path_for_task("/chunk/12/task-7"), "/chunk/12/result-7");
    }

    #[test]
    fn scatter_script_shape() {
        let q = Query::CountRange { lo: 15.0, hi: 16.0 };
        let ops = scatter_script(&q, &[1, 2, 3], 9);
        assert_eq!(ops.len(), 6);
        assert!(matches!(&ops[0], ClientOp::Create { path, .. } if path == "/chunk/1/task-9"));
        assert!(matches!(&ops[3], ClientOp::OpenRead { path, .. } if path == "/chunk/1/result-9"));
    }

    #[test]
    fn gather_merges_local_results() {
        let q = Query::CountRange { lo: 15.0, hi: 20.0 };
        let chunks: Vec<ChunkStore> = (0..4).map(|p| ChunkStore::generate(p, 300, 11)).collect();
        let expected: u64 = chunks
            .iter()
            .map(|c| match q.execute(c) {
                QueryResult::Count(n) => n,
                _ => unreachable!(),
            })
            .sum();
        let partitions: Vec<u32> = (0..4).collect();
        let merged = gather_results(&partitions, 1, |path| {
            let p: u32 = task_partition(&path.replacen("/result-", "/task-", 1))?;
            Some(q.execute(&chunks[p as usize]).encode().into_bytes())
        })
        .unwrap();
        assert_eq!(merged, QueryResult::Count(expected));
    }

    #[test]
    fn gather_fails_on_missing_partition() {
        assert_eq!(gather_results(&[0, 1], 1, |_| None), None);
    }
}
