//! The Qserv worker: a Scalla data server that executes task files.
//!
//! Workers "report their data availability by 'publishing' or 'exporting'
//! paths that include a partition number" (§IV-B). A [`QservWorkerNode`]
//! wraps a standard [`ServerNode`], exporting `/chunk/<partition>` for each
//! chunk it hosts. When a master *writes* a file matching
//! `/chunk/<p>/task-<id>`, the worker decodes the query, executes it
//! against the chunk, and materializes `/chunk/<p>/result-<id>` — which the
//! master then locates and reads through Scalla like any other file.

use crate::chunk::ChunkStore;
use crate::master::{result_path_for_task, task_partition};
use crate::query::Query;
use scalla_node::{ServerConfig, ServerNode};
use scalla_proto::{Addr, ClientMsg, Msg};
use scalla_simnet::{NetCtx, Node};
use std::collections::HashMap;

/// A data server hosting catalog chunks and executing queries on them.
pub struct QservWorkerNode {
    inner: ServerNode,
    chunks: HashMap<u32, ChunkStore>,
    /// Tasks executed (statistics).
    pub tasks_executed: u64,
}

impl QservWorkerNode {
    /// Builds a worker from a base server config and its hosted chunks.
    /// The export list is derived from the chunks — one `/chunk/<p>`
    /// prefix per partition, exactly Qserv's publication scheme.
    pub fn new(mut cfg: ServerConfig, chunks: Vec<ChunkStore>) -> QservWorkerNode {
        cfg.exports = chunks.iter().map(|c| format!("/chunk/{}", c.partition)).collect();
        let inner = ServerNode::new(cfg);
        let chunks = chunks.into_iter().map(|c| (c.partition, c)).collect();
        QservWorkerNode { inner, chunks, tasks_executed: 0 }
    }

    /// Partitions hosted here.
    pub fn partitions(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.chunks.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// The wrapped server (inspection).
    pub fn server(&self) -> &ServerNode {
        &self.inner
    }

    /// Mutable access to the wrapped server (seeding auxiliary files).
    pub fn server_mut(&mut self) -> &mut ServerNode {
        &mut self.inner
    }

    fn maybe_execute(&mut self, path: &str) {
        let Some(partition) = task_partition(path) else { return };
        let Some(chunk) = self.chunks.get(&partition) else { return };
        let Some(entry) = self.inner.fs().get(path) else { return };
        let Some(text) = std::str::from_utf8(&entry.data).ok() else { return };
        let Some(query) = Query::decode(text) else { return };
        let result = query.execute(chunk);
        let out_path = result_path_for_task(path);
        let encoded = result.encode();
        self.inner.fs_mut().create(&out_path);
        self.inner.fs_mut().write(&out_path, 0, encoded.as_bytes());
        self.tasks_executed += 1;
    }
}

impl Node for QservWorkerNode {
    fn on_start(&mut self, ctx: &mut dyn NetCtx) {
        self.inner.on_start(ctx);
    }

    fn on_message(&mut self, ctx: &mut dyn NetCtx, from: Addr, msg: Msg) {
        // Capture the task path before the write lands (handle → path).
        let written = if let Msg::Client(ClientMsg::Write { handle, .. }) = &msg {
            self.inner.handle_path(*handle).map(str::to_string)
        } else if let Msg::Client(ClientMsg::Close { handle }) = &msg {
            // Execute on close so multi-write tasks see complete payloads.
            self.inner.handle_path(*handle).map(str::to_string)
        } else {
            None
        };
        let execute_now = matches!(&msg, Msg::Client(ClientMsg::Close { .. }));
        self.inner.on_message(ctx, from, msg);
        if execute_now {
            if let Some(path) = written {
                self.maybe_execute(&path);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn NetCtx, token: u64) {
        self.inner.on_timer(ctx, token);
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::master::task_path;
    use crate::query::QueryResult;
    use bytes::Bytes;
    use scalla_proto::ServerMsg;
    use scalla_simnet::{LatencyModel, SimNet};
    use scalla_util::Nanos;

    #[test]
    fn worker_executes_task_on_close() {
        let mut net = SimNet::new(LatencyModel::fixed(Nanos::from_micros(5)), 1);
        let cfg = ServerConfig::new("w0", Addr(999));
        let chunks = vec![ChunkStore::generate(3, 200, 7)];
        let expected =
            Query::CountRange { lo: 15.0, hi: 20.0 }.execute(&ChunkStore::generate(3, 200, 7));
        let worker = net.add_node(Box::new(QservWorkerNode::new(cfg, chunks)));
        net.start();
        net.run_for(Nanos::from_millis(1));

        // Simulate the master's write sequence directly at the worker.
        let ext = Addr(500);
        let path = task_path(3, 1);
        net.inject(
            ext,
            worker,
            ClientMsg::Open { path: path.clone(), write: true, refresh: false, avoid: None }.into(),
        );
        net.run_for(Nanos::from_millis(1));
        let q = Query::CountRange { lo: 15.0, hi: 20.0 };
        net.inject(
            ext,
            worker,
            ClientMsg::Write { handle: 0, offset: 0, data: Bytes::from(q.encode()) }.into(),
        );
        net.inject(ext, worker, ClientMsg::Close { handle: 0 }.into());
        net.run_for(Nanos::from_millis(1));

        let w =
            net.node_mut(worker).as_any_mut().unwrap().downcast_ref::<QservWorkerNode>().unwrap();
        assert_eq!(w.tasks_executed, 1);
        let result_file = w.server().fs().get(&result_path_for_task(&path)).expect("result file");
        let decoded = QueryResult::decode(std::str::from_utf8(&result_file.data).unwrap());
        assert_eq!(decoded, Some(expected));
    }

    #[test]
    fn exports_derived_from_partitions() {
        let cfg = ServerConfig::new("w0", Addr(1));
        let w = QservWorkerNode::new(
            cfg,
            vec![ChunkStore::generate(5, 10, 1), ChunkStore::generate(9, 10, 1)],
        );
        assert_eq!(w.partitions(), vec![5, 9]);
    }

    #[test]
    fn non_task_writes_are_ignored() {
        let mut net = SimNet::new(LatencyModel::fixed(Nanos::from_micros(5)), 1);
        let cfg = ServerConfig::new("w0", Addr(999));
        let worker =
            net.add_node(Box::new(QservWorkerNode::new(cfg, vec![ChunkStore::generate(1, 10, 1)])));
        net.start();
        let ext = Addr(500);
        net.inject(
            ext,
            worker,
            ClientMsg::Open {
                path: "/chunk/1/notes.txt".into(),
                write: true,
                refresh: false,
                avoid: None,
            }
            .into(),
        );
        net.run_for(Nanos::from_millis(1));
        net.inject(
            ext,
            worker,
            ClientMsg::Write { handle: 0, offset: 0, data: Bytes::from_static(b"count 1 2") }
                .into(),
        );
        net.inject(ext, worker, ClientMsg::Close { handle: 0 }.into());
        net.run_for(Nanos::from_millis(1));
        let w =
            net.node_mut(worker).as_any_mut().unwrap().downcast_ref::<QservWorkerNode>().unwrap();
        assert_eq!(w.tasks_executed, 0);
    }

    #[test]
    fn task_for_unhosted_partition_is_ignored() {
        let mut net = SimNet::new(LatencyModel::fixed(Nanos::from_micros(5)), 1);
        let cfg = ServerConfig::new("w0", Addr(999));
        let worker =
            net.add_node(Box::new(QservWorkerNode::new(cfg, vec![ChunkStore::generate(1, 10, 1)])));
        net.start();
        let ext = Addr(500);
        let path = task_path(42, 0); // partition 42 not hosted
        net.inject(
            ext,
            worker,
            ClientMsg::Open { path: path.clone(), write: true, refresh: false, avoid: None }.into(),
        );
        net.run_for(Nanos::from_millis(1));
        net.inject(
            ext,
            worker,
            ClientMsg::Write { handle: 0, offset: 0, data: Bytes::from_static(b"count 1 2") }
                .into(),
        );
        net.inject(ext, worker, ClientMsg::Close { handle: 0 }.into());
        net.run_for(Nanos::from_millis(1));
        let w =
            net.node_mut(worker).as_any_mut().unwrap().downcast_ref::<QservWorkerNode>().unwrap();
        assert_eq!(w.tasks_executed, 0);
        let _ = ServerMsg::CloseOk; // silence unused import lint paths
    }
}
