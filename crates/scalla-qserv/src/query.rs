//! The per-chunk query language and its text wire form.
//!
//! Qserv supports "quick retrieval (retrieve all facts for a single
//! object)" and "longer analysis (… summaries over all records)". The
//! miniature language here covers both shapes: point look-up by object id,
//! aggregate count/mean over a magnitude range, and a top-N scan. Queries
//! and results travel as file contents, so both have a line-oriented text
//! encoding with full round-trip tests.

use crate::chunk::{ChunkStore, ObjRow};

/// A query executed independently on each chunk.
#[derive(Clone, Debug, PartialEq)]
pub enum Query {
    /// Count objects with magnitude in `[lo, hi)`.
    CountRange {
        /// Lower magnitude bound (inclusive).
        lo: f64,
        /// Upper magnitude bound (exclusive).
        hi: f64,
    },
    /// Mean magnitude over objects in `[lo, hi)`.
    MeanMag {
        /// Lower magnitude bound (inclusive).
        lo: f64,
        /// Upper magnitude bound (exclusive).
        hi: f64,
    },
    /// The `n` brightest objects in the chunk.
    Brightest {
        /// How many objects to return.
        n: u32,
    },
    /// All facts for a single object id (quick retrieval).
    Object {
        /// The object id.
        id: u64,
    },
}

/// The per-chunk answer.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryResult {
    /// A count.
    Count(u64),
    /// A mean over some number of rows (count kept for re-aggregation).
    Mean {
        /// Row count the mean covers.
        count: u64,
        /// The mean magnitude (0 when count is 0).
        mean: f64,
    },
    /// Selected rows.
    Rows(Vec<ObjRow>),
}

impl Query {
    /// Executes against one chunk.
    pub fn execute(&self, chunk: &ChunkStore) -> QueryResult {
        match *self {
            Query::CountRange { lo, hi } => {
                QueryResult::Count(chunk.scan_mag(lo, hi).count() as u64)
            }
            Query::MeanMag { lo, hi } => {
                let mut n = 0u64;
                let mut sum = 0.0;
                for r in chunk.scan_mag(lo, hi) {
                    n += 1;
                    sum += r.mag;
                }
                QueryResult::Mean { count: n, mean: if n == 0 { 0.0 } else { sum / n as f64 } }
            }
            Query::Brightest { n } => QueryResult::Rows(chunk.brightest(n as usize)),
            Query::Object { id } => {
                QueryResult::Rows(chunk.rows().iter().copied().filter(|r| r.id == id).collect())
            }
        }
    }

    /// Text wire form (one line).
    pub fn encode(&self) -> String {
        match *self {
            Query::CountRange { lo, hi } => format!("count {lo} {hi}"),
            Query::MeanMag { lo, hi } => format!("mean {lo} {hi}"),
            Query::Brightest { n } => format!("brightest {n}"),
            Query::Object { id } => format!("object {id}"),
        }
    }

    /// Parses the wire form.
    pub fn decode(s: &str) -> Option<Query> {
        let mut it = s.split_whitespace();
        match it.next()? {
            "count" => Some(Query::CountRange {
                lo: it.next()?.parse().ok()?,
                hi: it.next()?.parse().ok()?,
            }),
            "mean" => {
                Some(Query::MeanMag { lo: it.next()?.parse().ok()?, hi: it.next()?.parse().ok()? })
            }
            "brightest" => Some(Query::Brightest { n: it.next()?.parse().ok()? }),
            "object" => Some(Query::Object { id: it.next()?.parse().ok()? }),
            _ => None,
        }
    }
}

impl QueryResult {
    /// Text wire form (line-oriented).
    pub fn encode(&self) -> String {
        match self {
            QueryResult::Count(n) => format!("count {n}"),
            QueryResult::Mean { count, mean } => format!("mean {count} {mean}"),
            QueryResult::Rows(rows) => {
                let mut out = format!("rows {}", rows.len());
                for r in rows {
                    out.push_str(&format!("\n{} {} {} {}", r.id, r.ra, r.dec, r.mag));
                }
                out
            }
        }
    }

    /// Parses the wire form.
    pub fn decode(s: &str) -> Option<QueryResult> {
        let mut lines = s.lines();
        let head = lines.next()?;
        let mut it = head.split_whitespace();
        match it.next()? {
            "count" => Some(QueryResult::Count(it.next()?.parse().ok()?)),
            "mean" => Some(QueryResult::Mean {
                count: it.next()?.parse().ok()?,
                mean: it.next()?.parse().ok()?,
            }),
            "rows" => {
                let n: usize = it.next()?.parse().ok()?;
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    let line = lines.next()?;
                    let mut f = line.split_whitespace();
                    rows.push(ObjRow {
                        id: f.next()?.parse().ok()?,
                        ra: f.next()?.parse().ok()?,
                        dec: f.next()?.parse().ok()?,
                        mag: f.next()?.parse().ok()?,
                    });
                }
                Some(QueryResult::Rows(rows))
            }
            _ => None,
        }
    }

    /// Merges per-chunk results into a global answer (the master's gather
    /// step). All inputs must be the same variant.
    pub fn merge(results: &[QueryResult]) -> Option<QueryResult> {
        let first = results.first()?;
        match first {
            QueryResult::Count(_) => {
                let mut total = 0u64;
                for r in results {
                    let QueryResult::Count(n) = r else { return None };
                    total += n;
                }
                Some(QueryResult::Count(total))
            }
            QueryResult::Mean { .. } => {
                let (mut n, mut sum) = (0u64, 0.0f64);
                for r in results {
                    let QueryResult::Mean { count, mean } = r else { return None };
                    n += count;
                    sum += mean * (*count as f64);
                }
                Some(QueryResult::Mean {
                    count: n,
                    mean: if n == 0 { 0.0 } else { sum / n as f64 },
                })
            }
            QueryResult::Rows(_) => {
                let mut all = Vec::new();
                for r in results {
                    let QueryResult::Rows(rows) = r else { return None };
                    all.extend(rows.iter().copied());
                }
                all.sort_by(|a, b| a.mag.total_cmp(&b.mag));
                Some(QueryResult::Rows(all))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn execute_count_and_mean_agree() {
        let chunk = ChunkStore::generate(0, 500, 3);
        let q = Query::CountRange { lo: 15.0, hi: 20.0 };
        let QueryResult::Count(n) = q.execute(&chunk) else { panic!() };
        let QueryResult::Mean { count, mean } =
            Query::MeanMag { lo: 15.0, hi: 20.0 }.execute(&chunk)
        else {
            panic!()
        };
        assert_eq!(n, count);
        assert!((15.0..20.0).contains(&mean));
    }

    #[test]
    fn object_lookup_finds_exactly_one() {
        let chunk = ChunkStore::generate(2, 100, 3);
        let id = chunk.rows()[37].id;
        let QueryResult::Rows(rows) = Query::Object { id }.execute(&chunk) else { panic!() };
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].id, id);
    }

    #[test]
    fn query_text_roundtrip() {
        for q in [
            Query::CountRange { lo: 15.5, hi: 17.25 },
            Query::MeanMag { lo: 14.0, hi: 26.0 },
            Query::Brightest { n: 12 },
            Query::Object { id: 0xABCDEF },
        ] {
            assert_eq!(Query::decode(&q.encode()), Some(q));
        }
        assert_eq!(Query::decode("drop tables"), None);
    }

    #[test]
    fn result_text_roundtrip() {
        let chunk = ChunkStore::generate(1, 50, 7);
        for q in [
            Query::CountRange { lo: 15.0, hi: 20.0 },
            Query::MeanMag { lo: 15.0, hi: 20.0 },
            Query::Brightest { n: 5 },
        ] {
            let r = q.execute(&chunk);
            assert_eq!(QueryResult::decode(&r.encode()), Some(r));
        }
    }

    #[test]
    fn merge_counts_and_means() {
        let a = QueryResult::Count(3);
        let b = QueryResult::Count(7);
        assert_eq!(QueryResult::merge(&[a, b]), Some(QueryResult::Count(10)));

        let a = QueryResult::Mean { count: 2, mean: 10.0 };
        let b = QueryResult::Mean { count: 8, mean: 20.0 };
        let Some(QueryResult::Mean { count, mean }) = QueryResult::merge(&[a, b]) else { panic!() };
        assert_eq!(count, 10);
        assert!((mean - 18.0).abs() < 1e-9, "weighted mean, got {mean}");
        // Mixed variants are rejected.
        assert_eq!(
            QueryResult::merge(&[QueryResult::Count(1), QueryResult::Mean { count: 0, mean: 0.0 }]),
            None
        );
    }

    #[test]
    fn merged_brightest_is_globally_sorted() {
        let c1 = ChunkStore::generate(1, 200, 3);
        let c2 = ChunkStore::generate(2, 200, 3);
        let q = Query::Brightest { n: 4 };
        let merged = QueryResult::merge(&[q.execute(&c1), q.execute(&c2)]).unwrap();
        let QueryResult::Rows(rows) = merged else { panic!() };
        assert_eq!(rows.len(), 8);
        for w in rows.windows(2) {
            assert!(w[0].mag <= w[1].mag);
        }
    }

    proptest! {
        #[test]
        fn count_merge_is_sum(counts in proptest::collection::vec(0u64..1000, 1..20)) {
            let results: Vec<QueryResult> = counts.iter().map(|&c| QueryResult::Count(c)).collect();
            prop_assert_eq!(
                QueryResult::merge(&results),
                Some(QueryResult::Count(counts.iter().sum()))
            );
        }

        #[test]
        fn query_roundtrip_any_range(lo in 0.0f64..30.0, hi in 0.0f64..30.0) {
            let q = Query::CountRange { lo, hi };
            prop_assert_eq!(Query::decode(&q.encode()), Some(q));
        }
    }
}
