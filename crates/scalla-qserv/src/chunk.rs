//! The partitioned catalog: per-chunk object tables.
//!
//! LSST's catalog holds "records of billions of celestial bodies"; Qserv
//! shards it into spatial partitions (chunks). We generate deterministic
//! synthetic chunks — each row an object with position and magnitude — and
//! provide the scans the query layer needs. Real Qserv delegates this to
//! MySQL; an in-memory table exercises the identical dispatch behaviour.

use scalla_util::SplitMix64;

/// One catalog row.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ObjRow {
    /// Object identifier (unique across the catalog).
    pub id: u64,
    /// Right ascension, degrees in `[0, 360)`.
    pub ra: f64,
    /// Declination, degrees in `[-90, 90]`.
    pub dec: f64,
    /// Apparent magnitude (smaller = brighter), roughly `[14, 26)`.
    pub mag: f64,
}

/// An in-memory chunk: the rows of one spatial partition.
#[derive(Clone, Debug)]
pub struct ChunkStore {
    /// Partition number.
    pub partition: u32,
    rows: Vec<ObjRow>,
}

impl ChunkStore {
    /// Generates a deterministic chunk of `n` rows for `partition`.
    /// Equal `(partition, seed)` always produce identical rows.
    pub fn generate(partition: u32, n: usize, seed: u64) -> ChunkStore {
        let mut rng = SplitMix64::new(seed ^ (u64::from(partition) << 32));
        let rows = (0..n)
            .map(|i| ObjRow {
                id: (u64::from(partition) << 40) | i as u64,
                ra: rng.next_f64() * 360.0,
                dec: rng.next_f64() * 180.0 - 90.0,
                mag: 14.0 + rng.next_f64() * 12.0,
            })
            .collect();
        ChunkStore { partition, rows }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the chunk is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All rows.
    pub fn rows(&self) -> &[ObjRow] {
        &self.rows
    }

    /// Rows with magnitude in `[lo, hi)`.
    pub fn scan_mag(&self, lo: f64, hi: f64) -> impl Iterator<Item = &ObjRow> {
        self.rows.iter().filter(move |r| r.mag >= lo && r.mag < hi)
    }

    /// The `n` brightest rows (smallest magnitude), brightest first.
    pub fn brightest(&self, n: usize) -> Vec<ObjRow> {
        let mut v: Vec<ObjRow> = self.rows.clone();
        v.sort_by(|a, b| a.mag.total_cmp(&b.mag));
        v.truncate(n);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = ChunkStore::generate(7, 100, 42);
        let b = ChunkStore::generate(7, 100, 42);
        assert_eq!(a.rows(), b.rows());
        let c = ChunkStore::generate(8, 100, 42);
        assert_ne!(a.rows()[0], c.rows()[0], "partitions differ");
    }

    #[test]
    fn ids_encode_partition() {
        let a = ChunkStore::generate(3, 10, 1);
        assert!(a.rows().iter().all(|r| r.id >> 40 == 3));
    }

    #[test]
    fn ranges_are_sane() {
        let a = ChunkStore::generate(0, 1000, 5);
        for r in a.rows() {
            assert!((0.0..360.0).contains(&r.ra));
            assert!((-90.0..=90.0).contains(&r.dec));
            assert!((14.0..26.0).contains(&r.mag));
        }
    }

    #[test]
    fn scan_and_brightest() {
        let a = ChunkStore::generate(1, 1000, 9);
        let in_range = a.scan_mag(15.0, 16.0).count();
        assert!(in_range > 0 && in_range < 1000);
        let top = a.brightest(10);
        assert_eq!(top.len(), 10);
        for w in top.windows(2) {
            assert!(w[0].mag <= w[1].mag);
        }
        // Brightest-of-all is at least as bright as any scanned row.
        assert!(a.rows().iter().all(|r| top[0].mag <= r.mag));
    }
}
