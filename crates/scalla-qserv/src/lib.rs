//! Qserv-style distributed dispatch over Scalla (§IV-B).
//!
//! LSST's prototype query system re-used Scalla "as a distributed
//! communications layer": workers publish paths that include a partition
//! number; "when a master opens a path for a particular partition number,
//! Scalla guarantees that it has a communications channel to a worker
//! hosting that particular partition"; masters "communicate with workers by
//! opening, reading, writing, and closing files in Scalla".
//!
//! This crate reproduces that pattern:
//!
//! * [`chunk`] — the partitioned astronomical catalog (the MySQL substrate
//!   of real Qserv is substituted by an in-memory scan engine sufficient to
//!   exercise the dispatch path; DESIGN.md documents the substitution).
//! * [`query`] — a tiny query language (count / mean / brightest within a
//!   magnitude range) with a text wire form, executed per chunk.
//! * [`worker`] — [`QservWorkerNode`], a Scalla data server that exports
//!   `/chunk/<partition>` prefixes and *executes* any task file written
//!   under them, materializing a result file next to it.
//! * [`master`] — script builders for the master side: scatter a query to
//!   every partition by writing task files through Scalla, gather by
//!   reading result files, and decode.
//!
//! "In Qserv's current implementation, there is no configuration for the
//! number of nodes in the cluster" — likewise here: the master only names
//! partitions; Scalla finds the workers.

pub mod chunk;
pub mod master;
pub mod query;
pub mod worker;

pub use chunk::{ChunkStore, ObjRow};
pub use master::{gather_results, result_path, scatter_script, task_path, QservMasterNode};
pub use query::{Query, QueryResult};
pub use worker::QservWorkerNode;
