//! The proxy data-server state machine (§II-B6 deployment model).
//!
//! A [`ProxyNode`] sits between clients and the cluster. Toward its
//! parent cmsd it looks exactly like a data server: it logs in with
//! `role: Server`, heartbeats load reports, and answers `Locate`
//! positively (and only positively) for files it has *fully* cached —
//! so the ordinary V_h machinery redirects other clients to the proxy
//! with no new protocol. Toward clients it speaks the normal
//! `Open`/`Read`/`Close` data path, serving reads from the sharded
//! [`BlockStore`] and fetching missing blocks from the owning data
//! server on demand (resolve via the origin redirector, open, stat,
//! block reads).
//!
//! ## Origin-side correlation
//!
//! `ServerMsg` replies carry no correlation ids, so the proxy keeps a
//! strict window of **one outstanding request per remote address** and
//! matches replies positionally: each remote gets a [`Link`] with a
//! FIFO queue, and the head request is retired by whatever reply (or
//! timeout) arrives next. This is reorder-safe on all three runtimes;
//! its one blind spot — duplicated frames desynchronising the position
//! — is called out in DESIGN.md (real xrootd carries stream ids).
//!
//! ## Failure handling
//!
//! Origin errors and timeouts run the client's §III-C1 recovery on the
//! proxy's behalf: re-resolve with `refresh: true` and `avoid` naming
//! the failing host, bounded by `max_refreshes`. A fully-cached file
//! needs no origin at all, which is what lets the proxy keep serving
//! after the origin dies.

use crate::store::{BlockKey, BlockStore, PcacheConfig, PinOutcome};
use bytes::Bytes;
use scalla_client::Directory;
use scalla_obs::{AtomicHistogram, Counter, Obs};
use scalla_proto::{Addr, ClientMsg, CmsMsg, ErrCode, Msg, NodeRoleTag, ServerMsg};
use scalla_simnet::{NetCtx, Node};
use scalla_util::{crc32, Nanos};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// Timer tokens used by the proxy.
pub mod tokens {
    /// Upward load report.
    pub const HEARTBEAT: u64 = 1;
    /// Origin-request timeouts use `TIMEOUT_BASE + gen`.
    pub const TIMEOUT_BASE: u64 = 1 << 40;
    /// Wait/Retry-parked requests use `RETRY_BASE + id`.
    pub const RETRY_BASE: u64 = 1 << 41;
}

/// Proxy node configuration.
#[derive(Clone)]
pub struct ProxyConfig {
    /// Host name used in logins, redirects, and metric labels.
    pub name: String,
    /// Parent cmsd address(es) the proxy joins (and advertises to).
    pub parents: Vec<Addr>,
    /// Redirector(s) the proxy resolves cache misses through. Often the
    /// same addresses as `parents`, but kept separate so a proxy can
    /// front a foreign administrative domain (§II-B6).
    pub origin_managers: Vec<Addr>,
    /// Host-name directory for following redirects.
    pub directory: Arc<Directory>,
    /// Exported path prefixes declared at login.
    pub exports: Vec<String>,
    /// Block-cache tuning.
    pub cache: PcacheConfig,
    /// Period between upward load reports.
    pub heartbeat: Nanos,
    /// Per-request origin timeout before recovery kicks in.
    pub request_timeout: Nanos,
    /// Refresh-recovery attempts per file before giving up (§III-C1).
    pub max_refreshes: u32,
    /// Wait/Retry hints honoured per file before giving up.
    pub max_waits: u32,
}

impl ProxyConfig {
    /// A proxy named `name` under `parent`, resolving misses through the
    /// same cmsd, exporting `/`.
    pub fn new(name: impl Into<String>, parent: Addr, directory: Arc<Directory>) -> ProxyConfig {
        ProxyConfig {
            name: name.into(),
            parents: vec![parent],
            origin_managers: vec![parent],
            directory,
            exports: vec!["/".to_string()],
            cache: PcacheConfig::default(),
            heartbeat: Nanos::from_secs(1),
            request_timeout: Nanos::from_secs(2),
            max_refreshes: 3,
            max_waits: 8,
        }
    }
}

/// What an origin-side request is for (drives reply interpretation).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ReqKind {
    /// Open at a redirector or data server (follows redirects).
    Resolve,
    /// Stat at the origin server to learn the file size.
    Stat,
    /// Block fetch (`Read`) of the given block index.
    Fill { index: u64 },
    /// Courtesy close of the origin handle once fully cached.
    CloseOrigin,
}

/// One queued origin-side request.
struct OriginReq {
    to: Addr,
    path: String,
    kind: ReqKind,
    msg: Msg,
}

/// Per-remote send window: one outstanding request, FIFO backlog.
#[derive(Default)]
struct Link {
    outstanding: Option<(u64, OriginReq)>,
    queue: VecDeque<OriginReq>,
}

/// Where a file is in its origin lifecycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
enum OriginPhase {
    /// No origin interaction in flight (fresh, or fully cached).
    #[default]
    Idle,
    /// Resolving the owning server through the redirector.
    Resolving,
    /// Origin open; statting for the file size.
    Statting,
    /// Origin handle live; fills may be issued.
    Ready,
}

/// An in-flight (pinned) block fill.
struct Fill {
    started: Nanos,
    /// Whether the origin `Read` has actually been queued; cleared on
    /// recovery so re-resolution re-issues the fetch.
    requested: bool,
}

/// A client read waiting on one or more fills.
struct PendingRead {
    client: Addr,
    start: u64,
    end: u64,
    missing: HashSet<u64>,
    /// Bytes of this read that had to come from the origin (the rest
    /// were already cached when the read arrived).
    origin_bytes: u64,
}

/// Everything the proxy knows about one path.
#[derive(Default)]
struct FileState {
    size: Option<u64>,
    origin: Option<Addr>,
    origin_handle: u64,
    phase: OriginPhase,
    refreshes: u32,
    waits: u32,
    /// Fully cached and announced upward via `Have{reqid: 0}`.
    advertised: bool,
    avoid: Option<String>,
    open_waiters: Vec<Addr>,
    fills: HashMap<u64, Fill>,
    reads: Vec<PendingRead>,
    open_handles: u32,
}

struct ProxyMetrics {
    bytes_cache: Arc<Counter>,
    bytes_origin: Arc<Counter>,
    fetches: Arc<Counter>,
    fill_ns: Arc<AtomicHistogram>,
    advertised: Arc<Counter>,
    stale_replies: Arc<Counter>,
}

/// The block-caching proxy node.
pub struct ProxyNode {
    cfg: ProxyConfig,
    store: Arc<BlockStore>,
    files: HashMap<String, FileState>,
    /// Client-facing handles → path.
    handles: HashMap<u64, String>,
    next_handle: u64,
    links: HashMap<Addr, Link>,
    /// Outstanding-request gen → remote address, for timeout routing.
    gen_to_addr: HashMap<u64, Addr>,
    /// Wait/Retry-parked requests by retry id.
    parked: HashMap<u64, OriginReq>,
    next_gen: u64,
    /// Rotates through `origin_managers` on manager timeouts.
    mgr_idx: usize,
    obs: Obs,
    m: Option<ProxyMetrics>,
}

impl ProxyNode {
    /// Creates a proxy with an empty cache.
    pub fn new(cfg: ProxyConfig) -> ProxyNode {
        let store = Arc::new(BlockStore::new(cfg.cache.clone()));
        ProxyNode {
            cfg,
            store,
            files: HashMap::new(),
            handles: HashMap::new(),
            next_handle: 0,
            links: HashMap::new(),
            gen_to_addr: HashMap::new(),
            parked: HashMap::new(),
            next_gen: 0,
            mgr_idx: 0,
            obs: Obs::disabled(),
            m: None,
        }
    }

    /// Attaches an observability handle: registers served/filled byte
    /// counters, the fill-latency histogram, and a scrape-time collector
    /// mirroring the block store's internals.
    pub fn set_obs(&mut self, obs: Obs) {
        if obs.is_enabled() {
            let reg = obs.registry();
            let n = self.cfg.name.as_str();
            self.m = Some(ProxyMetrics {
                bytes_cache: reg.counter(
                    "scalla_pcache_bytes_served_total",
                    &[("proxy", n), ("source", "cache")],
                ),
                bytes_origin: reg.counter(
                    "scalla_pcache_bytes_served_total",
                    &[("proxy", n), ("source", "origin")],
                ),
                fetches: reg.counter("scalla_pcache_origin_fetches_total", &[("proxy", n)]),
                fill_ns: reg.histogram("scalla_pcache_fill_latency_ns", &[("proxy", n)]),
                advertised: reg.counter("scalla_pcache_advertised_files_total", &[("proxy", n)]),
                stale_replies: reg.counter("scalla_pcache_stale_replies_total", &[("proxy", n)]),
            });
            BlockStore::register_collector(self.store.clone(), &obs, n);
        }
        self.obs = obs;
    }

    /// The proxy's block store (shared; harnesses may inspect it).
    pub fn store(&self) -> &Arc<BlockStore> {
        &self.store
    }

    /// The configured host name.
    pub fn name(&self) -> &str {
        &self.cfg.name
    }

    /// Whether `path` has been advertised upward as fully cached.
    pub fn is_advertised(&self, path: &str) -> bool {
        self.files.get(path).is_some_and(|f| f.advertised)
    }

    // ---- origin-side send window -------------------------------------

    fn enqueue(&mut self, ctx: &mut dyn NetCtx, req: OriginReq) {
        let to = req.to;
        self.links.entry(to).or_default().queue.push_back(req);
        self.pump(ctx, to);
    }

    fn pump(&mut self, ctx: &mut dyn NetCtx, to: Addr) {
        let Some(link) = self.links.get_mut(&to) else { return };
        if link.outstanding.is_some() {
            return;
        }
        let Some(req) = link.queue.pop_front() else { return };
        self.next_gen += 1;
        let gen = self.next_gen;
        ctx.send(to, req.msg.clone());
        ctx.set_timer(self.cfg.request_timeout, tokens::TIMEOUT_BASE + gen);
        link.outstanding = Some((gen, req));
        self.gen_to_addr.insert(gen, to);
    }

    // ---- client-facing path ------------------------------------------

    fn handle_client_open(&mut self, ctx: &mut dyn NetCtx, from: Addr, path: String, write: bool) {
        if write {
            // Read-only tier: vector writers at a real redirector.
            let mgr = self.cfg.origin_managers[self.mgr_idx % self.cfg.origin_managers.len()];
            let reply = match self.cfg.directory.name_of(mgr) {
                Some(host) => ServerMsg::Redirect { host },
                None => ServerMsg::Error {
                    code: ErrCode::BadRequest,
                    detail: "proxy is read-only".into(),
                },
            };
            ctx.send(from, reply.into());
            return;
        }
        let file = self.files.entry(path.clone()).or_default();
        if file.size.is_some() {
            file.open_handles += 1;
            let h = self.next_handle;
            self.next_handle += 1;
            self.handles.insert(h, path);
            ctx.send(from, ServerMsg::OpenOk { handle: h }.into());
            return;
        }
        file.open_waiters.push(from);
        if file.phase == OriginPhase::Idle {
            self.start_resolve(ctx, &path, false);
        }
    }

    fn handle_client_read(
        &mut self,
        ctx: &mut dyn NetCtx,
        from: Addr,
        handle: u64,
        offset: u64,
        len: u32,
    ) {
        let Some(path) = self.handles.get(&handle).cloned() else {
            let detail = format!("bad handle {handle}");
            ctx.send(from, ServerMsg::Error { code: ErrCode::BadRequest, detail }.into());
            return;
        };
        let store = self.store.clone();
        let cache = self.cfg.cache.clone();
        let bs = cache.block_size as u64;
        let now = ctx.now();
        let file = self.files.get_mut(&path).expect("open handle implies file state");
        let size = file.size.expect("handles granted only once size is known");
        let start = offset.min(size);
        let end = offset.saturating_add(len as u64).min(size);
        if start >= end {
            // At or past EOF: an empty read, by the data-path convention.
            ctx.send(from, ServerMsg::Data { data: Bytes::new() }.into());
            return;
        }
        let first = start / bs;
        let last = (end - 1) / bs;
        let mut missing: HashSet<u64> = HashSet::new();
        let mut origin_bytes = 0u64;
        let mut parts: Vec<Bytes> = Vec::new();
        for idx in first..=last {
            let key = BlockKey::new(path.as_str(), idx);
            let lo = start.max(idx * bs);
            let hi = end.min(idx * bs + cache.block_len(size, idx));
            match store.get(&key) {
                Some(data) => {
                    if missing.is_empty() {
                        parts.push(data.slice((lo - idx * bs) as usize..(hi - idx * bs) as usize));
                    }
                }
                None => {
                    missing.insert(idx);
                    origin_bytes += hi - lo;
                    // Single-flight: Pinned means we own the fetch; any
                    // other outcome coalesces onto the existing fill.
                    store.try_pin(&key);
                    file.fills.entry(idx).or_insert(Fill { started: now, requested: false });
                }
            }
        }
        // Sequential prefetch: claim up to K blocks past the last one read.
        let nblocks = cache.blocks_for(size);
        for idx in (last + 1)..(last + 1 + cache.prefetch as u64).min(nblocks) {
            let key = BlockKey::new(path.as_str(), idx);
            if !store.contains(&key) && store.try_pin(&key) == PinOutcome::Pinned {
                file.fills.entry(idx).or_insert(Fill { started: now, requested: false });
            }
        }
        let all_hit = missing.is_empty();
        if all_hit {
            let mut buf = Vec::with_capacity((end - start) as usize);
            for p in parts {
                buf.extend_from_slice(&p);
            }
            ctx.send(from, ServerMsg::Data { data: Bytes::from(buf) }.into());
        } else {
            file.reads.push(PendingRead { client: from, start, end, missing, origin_bytes });
        }
        let phase = file.phase;
        let has_fills = !file.fills.is_empty();
        if all_hit {
            if let Some(m) = &self.m {
                m.bytes_cache.add(end - start);
            }
        }
        match phase {
            OriginPhase::Ready => self.issue_fills(ctx, &path),
            // Origin released after full caching (or never contacted):
            // eviction re-opens the resolve walk.
            OriginPhase::Idle if has_fills => self.start_resolve(ctx, &path, false),
            _ => {}
        }
    }

    fn handle_client_close(&mut self, ctx: &mut dyn NetCtx, from: Addr, handle: u64) {
        if let Some(path) = self.handles.remove(&handle) {
            if let Some(file) = self.files.get_mut(&path) {
                file.open_handles = file.open_handles.saturating_sub(1);
            }
        }
        ctx.send(from, ServerMsg::CloseOk.into());
    }

    // ---- origin lifecycle --------------------------------------------

    fn start_resolve(&mut self, ctx: &mut dyn NetCtx, path: &str, refresh: bool) {
        let mgr = self.cfg.origin_managers[self.mgr_idx % self.cfg.origin_managers.len()];
        let Some(file) = self.files.get_mut(path) else { return };
        file.phase = OriginPhase::Resolving;
        let msg = ClientMsg::Open {
            path: path.to_string(),
            write: false,
            refresh,
            avoid: file.avoid.clone(),
        }
        .into();
        self.enqueue(
            ctx,
            OriginReq { to: mgr, path: path.to_string(), kind: ReqKind::Resolve, msg },
        );
    }

    fn file_ready(&mut self, ctx: &mut dyn NetCtx, path: &str) {
        let waiters = {
            let Some(file) = self.files.get_mut(path) else { return };
            file.phase = OriginPhase::Ready;
            file.refreshes = 0;
            file.waits = 0;
            file.avoid = None;
            std::mem::take(&mut file.open_waiters)
        };
        for w in waiters {
            let h = self.next_handle;
            self.next_handle += 1;
            self.handles.insert(h, path.to_string());
            self.files.get_mut(path).expect("still present").open_handles += 1;
            ctx.send(w, ServerMsg::OpenOk { handle: h }.into());
        }
        self.issue_fills(ctx, path);
        self.check_fully_cached(ctx, path);
    }

    fn issue_fills(&mut self, ctx: &mut dyn NetCtx, path: &str) {
        let cache = self.cfg.cache.clone();
        let reqs = {
            let Some(file) = self.files.get_mut(path) else { return };
            if file.phase != OriginPhase::Ready {
                return;
            }
            let (Some(origin), Some(size)) = (file.origin, file.size) else { return };
            let handle = file.origin_handle;
            let mut todo: Vec<u64> =
                file.fills.iter().filter(|(_, f)| !f.requested).map(|(&i, _)| i).collect();
            todo.sort_unstable();
            let bs = cache.block_size as u64;
            let mut reqs = Vec::with_capacity(todo.len());
            for idx in todo {
                file.fills.get_mut(&idx).expect("just listed").requested = true;
                reqs.push(OriginReq {
                    to: origin,
                    path: path.to_string(),
                    kind: ReqKind::Fill { index: idx },
                    msg: ClientMsg::Read {
                        handle,
                        offset: idx * bs,
                        len: cache.block_len(size, idx) as u32,
                    }
                    .into(),
                });
            }
            reqs
        };
        for req in reqs {
            self.enqueue(ctx, req);
        }
    }

    fn fill_done(&mut self, ctx: &mut dyn NetCtx, path: &str, index: u64, data: Bytes) {
        let store = self.store.clone();
        let key = BlockKey::new(path, index);
        let now = ctx.now();
        let Some(file) = self.files.get_mut(path) else {
            store.unpin(&key);
            return;
        };
        if let Some(fill) = file.fills.remove(&index) {
            if let Some(m) = &self.m {
                m.fill_ns.record(now.since(fill.started).0);
                m.fetches.inc();
            }
        }
        store.insert(key, data);
        self.complete_reads(ctx, path, index);
        self.check_fully_cached(ctx, path);
    }

    /// Retires pending reads whose last missing block just landed.
    fn complete_reads(&mut self, ctx: &mut dyn NetCtx, path: &str, index: u64) {
        let store = self.store.clone();
        let cache = self.cfg.cache.clone();
        let bs = cache.block_size as u64;
        let now = ctx.now();
        let mut done: Vec<(Addr, Bytes, u64, u64)> = Vec::new();
        let mut refilled = false;
        {
            let Some(file) = self.files.get_mut(path) else { return };
            let size = file.size.unwrap_or(0);
            let FileState { reads, fills, .. } = file;
            let mut i = 0;
            while i < reads.len() {
                let r = &mut reads[i];
                r.missing.remove(&index);
                if !r.missing.is_empty() {
                    i += 1;
                    continue;
                }
                let first = r.start / bs;
                let last = (r.end - 1) / bs;
                let mut buf = Vec::with_capacity((r.end - r.start) as usize);
                let mut evicted = Vec::new();
                for idx in first..=last {
                    match store.peek_block(&BlockKey::new(path, idx)) {
                        Some(data) => {
                            let lo = r.start.max(idx * bs);
                            let hi = r.end.min(idx * bs + cache.block_len(size, idx));
                            buf.extend_from_slice(
                                &data[(lo - idx * bs) as usize..(hi - idx * bs) as usize],
                            );
                        }
                        None => evicted.push(idx),
                    }
                }
                if evicted.is_empty() {
                    let cached = (r.end - r.start) - r.origin_bytes;
                    done.push((r.client, Bytes::from(buf), cached, r.origin_bytes));
                    reads.swap_remove(i);
                } else {
                    // Evicted between fill and assembly (tiny cache under
                    // pressure): re-claim and fetch again.
                    for idx in evicted {
                        r.missing.insert(idx);
                        store.try_pin(&BlockKey::new(path, idx));
                        fills.entry(idx).or_insert(Fill { started: now, requested: false });
                        refilled = true;
                    }
                    i += 1;
                }
            }
        }
        for (client, data, cached, origin) in done {
            ctx.send(client, ServerMsg::Data { data }.into());
            if let Some(m) = &self.m {
                m.bytes_cache.add(cached);
                m.bytes_origin.add(origin);
            }
        }
        if refilled {
            match self.files.get(path).map(|f| f.phase) {
                Some(OriginPhase::Ready) => self.issue_fills(ctx, path),
                Some(OriginPhase::Idle) => self.start_resolve(ctx, path, false),
                _ => {}
            }
        }
    }

    /// Advertises a file upward once every block is cached, and releases
    /// the origin handle when nothing more is in flight.
    fn check_fully_cached(&mut self, ctx: &mut dyn NetCtx, path: &str) {
        let store = self.store.clone();
        let cache = self.cfg.cache.clone();
        let close = {
            let Some(file) = self.files.get_mut(path) else { return };
            let Some(size) = file.size else { return };
            if !file.advertised {
                let n = cache.blocks_for(size);
                if !(0..n).all(|i| store.contains(&BlockKey::new(path, i))) {
                    return;
                }
                file.advertised = true;
                let hash = crc32(path.as_bytes());
                for &parent in &self.cfg.parents {
                    ctx.send(
                        parent,
                        CmsMsg::Have { reqid: 0, path: path.to_string(), hash, staging: false }
                            .into(),
                    );
                }
                if let Some(m) = &self.m {
                    m.advertised.inc();
                }
            }
            if file.fills.is_empty() && file.reads.is_empty() {
                file.phase = OriginPhase::Idle;
                file.origin.take().map(|origin| (origin, file.origin_handle))
            } else {
                None
            }
        };
        if let Some((origin, handle)) = close {
            self.enqueue(
                ctx,
                OriginReq {
                    to: origin,
                    path: path.to_string(),
                    kind: ReqKind::CloseOrigin,
                    msg: ClientMsg::Close { handle }.into(),
                },
            );
        }
    }

    // ---- recovery ----------------------------------------------------

    /// §III-C1 on the proxy's behalf: drop the origin binding, mark the
    /// failing host to be avoided, and re-resolve with `refresh: true`.
    fn recover_file(&mut self, ctx: &mut dyn NetCtx, path: &str, failing: Option<Addr>) {
        let too_many = {
            let Some(file) = self.files.get_mut(path) else { return };
            file.refreshes += 1;
            file.refreshes > self.cfg.max_refreshes
        };
        if too_many {
            self.fail_file(ctx, path, ErrCode::IoError, "origin unreachable");
            return;
        }
        let avoid = failing.and_then(|a| self.cfg.directory.name_of(a));
        {
            let file = self.files.get_mut(path).expect("present above");
            file.phase = OriginPhase::Idle;
            file.origin = None;
            if avoid.is_some() {
                file.avoid = avoid;
            }
            for f in file.fills.values_mut() {
                f.requested = false;
            }
        }
        for link in self.links.values_mut() {
            link.queue.retain(|r| r.path != path);
        }
        self.start_resolve(ctx, path, true);
    }

    /// Terminal failure: error out every waiter and pending read, release
    /// fill pins, and forget the file unless handles still reference it.
    fn fail_file(&mut self, ctx: &mut dyn NetCtx, path: &str, code: ErrCode, detail: &str) {
        let store = self.store.clone();
        for link in self.links.values_mut() {
            link.queue.retain(|r| r.path != path);
        }
        let drop_state = {
            let Some(file) = self.files.get_mut(path) else { return };
            for w in file.open_waiters.drain(..) {
                ctx.send(w, ServerMsg::Error { code, detail: detail.to_string() }.into());
            }
            for r in file.reads.drain(..) {
                ctx.send(r.client, ServerMsg::Error { code, detail: detail.to_string() }.into());
            }
            for &idx in file.fills.keys() {
                store.unpin(&BlockKey::new(path, idx));
            }
            file.fills.clear();
            file.phase = OriginPhase::Idle;
            file.origin = None;
            file.refreshes = 0;
            file.waits = 0;
            file.open_handles == 0 && !file.advertised
        };
        if drop_state {
            self.files.remove(path);
        }
        if self.obs.is_enabled() {
            self.obs.incident("pcache_origin_failed");
        }
    }

    fn park_retry(&mut self, ctx: &mut dyn NetCtx, req: OriginReq, millis: u64) {
        let too_many = {
            let Some(file) = self.files.get_mut(&req.path) else { return };
            file.waits += 1;
            file.waits > self.cfg.max_waits
        };
        if too_many {
            let path = req.path.clone();
            self.fail_file(ctx, &path, ErrCode::IoError, "origin kept us waiting");
            return;
        }
        self.next_gen += 1;
        let id = self.next_gen;
        self.parked.insert(id, req);
        ctx.set_timer(Nanos::from_millis(millis.max(1)), tokens::RETRY_BASE + id);
    }

    // ---- origin reply dispatch ---------------------------------------

    fn handle_origin_reply(&mut self, ctx: &mut dyn NetCtx, from: Addr, msg: ServerMsg) {
        let Some(link) = self.links.get_mut(&from) else { return };
        let Some((gen, req)) = link.outstanding.take() else {
            // Positional correlation: with nothing outstanding this is a
            // duplicate or a post-timeout straggler. Drop it.
            if let Some(m) = &self.m {
                m.stale_replies.inc();
            }
            return;
        };
        self.gen_to_addr.remove(&gen);
        match (req.kind, msg) {
            (ReqKind::Resolve, ServerMsg::Redirect { host }) => {
                match self.cfg.directory.addr_of(&host) {
                    Some(addr) => self.enqueue(
                        ctx,
                        OriginReq {
                            to: addr,
                            path: req.path,
                            kind: ReqKind::Resolve,
                            msg: req.msg,
                        },
                    ),
                    None => self.recover_file(ctx, &req.path, Some(from)),
                }
            }
            (ReqKind::Resolve, ServerMsg::OpenOk { handle }) => {
                let Some(file) = self.files.get_mut(&req.path) else {
                    // File failed or was dropped mid-resolve: close politely.
                    self.enqueue(
                        ctx,
                        OriginReq {
                            to: from,
                            path: req.path,
                            kind: ReqKind::CloseOrigin,
                            msg: ClientMsg::Close { handle }.into(),
                        },
                    );
                    self.pump(ctx, from);
                    return;
                };
                file.origin = Some(from);
                file.origin_handle = handle;
                if file.size.is_some() {
                    self.file_ready(ctx, &req.path);
                } else {
                    file.phase = OriginPhase::Statting;
                    let msg = ClientMsg::Stat { path: req.path.clone() }.into();
                    self.enqueue(
                        ctx,
                        OriginReq { to: from, path: req.path, kind: ReqKind::Stat, msg },
                    );
                }
            }
            (ReqKind::Stat, ServerMsg::StatOk { size, .. }) => {
                if let Some(file) = self.files.get_mut(&req.path) {
                    file.size = Some(size);
                    self.file_ready(ctx, &req.path);
                }
            }
            (ReqKind::Fill { index }, ServerMsg::Data { data }) => {
                self.fill_done(ctx, &req.path, index, data);
            }
            (_, ServerMsg::Wait { millis }) => self.park_retry(ctx, req, millis),
            (_, ServerMsg::Error { code: ErrCode::Retry, .. }) => self.park_retry(ctx, req, 50),
            (ReqKind::Resolve, ServerMsg::Error { code: ErrCode::NotFound, .. })
                if self.cfg.origin_managers.contains(&from) =>
            {
                // The redirector searched the whole cluster: terminal.
                self.fail_file(ctx, &req.path, ErrCode::NotFound, "no origin has the file");
            }
            (ReqKind::Resolve | ReqKind::Stat | ReqKind::Fill { .. }, ServerMsg::Error { .. }) => {
                self.recover_file(ctx, &req.path, Some(from));
            }
            (ReqKind::CloseOrigin, _) => {}
            (_, _) => {
                // Reply shape doesn't match the head request (e.g. a
                // duplicated frame shifted the window). Accepting it would
                // corrupt state; dropping costs one timeout-driven retry.
                if let Some(m) = &self.m {
                    m.stale_replies.inc();
                }
            }
        }
        self.pump(ctx, from);
    }
}

impl Node for ProxyNode {
    fn on_start(&mut self, ctx: &mut dyn NetCtx) {
        // Revive hygiene: in-flight origin state died with the process;
        // pins and fill tickets persist and are re-requested on demand.
        self.links.clear();
        self.gen_to_addr.clear();
        self.parked.clear();
        for file in self.files.values_mut() {
            file.phase = OriginPhase::Idle;
            file.origin = None;
            file.open_waiters.clear();
            file.reads.clear();
            for f in file.fills.values_mut() {
                f.requested = false;
            }
        }
        let login: Msg = CmsMsg::Login {
            name: self.cfg.name.clone(),
            role: NodeRoleTag::Server,
            exports: self.cfg.exports.clone(),
        }
        .into();
        for &parent in &self.cfg.parents {
            ctx.send(parent, login.clone());
        }
        ctx.set_timer(self.cfg.heartbeat, tokens::HEARTBEAT);
    }

    fn on_message(&mut self, ctx: &mut dyn NetCtx, from: Addr, msg: Msg) {
        match msg {
            Msg::Client(ClientMsg::Open { path, write, .. }) => {
                self.handle_client_open(ctx, from, path, write);
            }
            Msg::Client(ClientMsg::Read { handle, offset, len }) => {
                self.handle_client_read(ctx, from, handle, offset, len);
            }
            Msg::Client(ClientMsg::Close { handle }) => {
                self.handle_client_close(ctx, from, handle);
            }
            Msg::Client(ClientMsg::Write { .. }) => {
                ctx.send(
                    from,
                    ServerMsg::Error {
                        code: ErrCode::BadRequest,
                        detail: "proxy is read-only".into(),
                    }
                    .into(),
                );
            }
            Msg::Client(ClientMsg::Stat { path }) => {
                let reply = match self.files.get(&path).and_then(|f| f.size) {
                    Some(size) => ServerMsg::StatOk { size, online: true },
                    None => ServerMsg::Error {
                        code: ErrCode::NotFound,
                        detail: format!("{path} not cached by {}", self.cfg.name),
                    },
                };
                ctx.send(from, reply.into());
            }
            Msg::Client(ClientMsg::Prepare { .. }) => {
                ctx.send(from, ServerMsg::PrepareOk.into());
            }
            Msg::Client(ClientMsg::List { .. }) => {
                ctx.send(
                    from,
                    ServerMsg::Error {
                        code: ErrCode::BadRequest,
                        detail: "listing is served by the cns daemon".into(),
                    }
                    .into(),
                );
            }
            Msg::Server(reply) => self.handle_origin_reply(ctx, from, reply),
            Msg::Cms(CmsMsg::Locate { reqid, path, hash, write }) => {
                // Answer positively only, and only for files we can serve
                // without the origin (fully cached).
                if !write && self.is_advertised(&path) {
                    ctx.send(from, CmsMsg::Have { reqid, path, hash, staging: false }.into());
                }
            }
            Msg::Cms(_) => {
                // LoginOk / LoginRejected / stray cluster traffic.
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn NetCtx, token: u64) {
        if token == tokens::HEARTBEAT {
            let load = self.handles.len() as u32;
            let free = self.cfg.cache.capacity.saturating_sub(self.store.used_bytes());
            for &parent in &self.cfg.parents.clone() {
                ctx.send(parent, CmsMsg::LoadReport { load, free_bytes: free }.into());
            }
            ctx.set_timer(self.cfg.heartbeat, tokens::HEARTBEAT);
        } else if token >= tokens::RETRY_BASE {
            if let Some(req) = self.parked.remove(&(token - tokens::RETRY_BASE)) {
                self.enqueue(ctx, req);
            }
        } else if token >= tokens::TIMEOUT_BASE {
            let gen = token - tokens::TIMEOUT_BASE;
            let Some(addr) = self.gen_to_addr.remove(&gen) else { return };
            let Some(link) = self.links.get_mut(&addr) else { return };
            let Some((g, req)) = link.outstanding.take() else { return };
            if g != gen {
                link.outstanding = Some((g, req));
                return;
            }
            match req.kind {
                ReqKind::CloseOrigin => {}
                ReqKind::Resolve if self.cfg.origin_managers.contains(&addr) => {
                    // Redirector unresponsive: rotate to the next one.
                    self.mgr_idx += 1;
                    self.recover_file(ctx, &req.path, None);
                }
                _ => self.recover_file(ctx, &req.path, Some(addr)),
            }
            self.pump(ctx, addr);
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct MockCtx {
        now: Nanos,
        me: Addr,
        sends: Vec<(Addr, Msg)>,
        timers: Vec<(Nanos, u64)>,
        rng: u64,
    }

    impl MockCtx {
        fn new() -> MockCtx {
            MockCtx {
                now: Nanos::ZERO,
                me: Addr(100),
                sends: Vec::new(),
                timers: Vec::new(),
                rng: 1,
            }
        }

        fn take_sends(&mut self) -> Vec<(Addr, Msg)> {
            std::mem::take(&mut self.sends)
        }
    }

    impl NetCtx for MockCtx {
        fn now(&self) -> Nanos {
            self.now
        }
        fn me(&self) -> Addr {
            self.me
        }
        fn send(&mut self, to: Addr, msg: Msg) {
            self.sends.push((to, msg));
        }
        fn set_timer(&mut self, delay: Nanos, token: u64) {
            self.timers.push((delay, token));
        }
        fn rand_u64(&mut self) -> u64 {
            self.rng = self.rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.rng
        }
    }

    const MGR: Addr = Addr(0);
    const SRV: Addr = Addr(1);
    const CLIENT: Addr = Addr(10);
    const CLIENT2: Addr = Addr(11);

    fn proxy(block_size: u32) -> ProxyNode {
        let dir = Arc::new(Directory::new());
        dir.register("mgr-0", MGR);
        dir.register("srv-0", SRV);
        let mut cfg = ProxyConfig::new("pxy-0", MGR, dir);
        cfg.cache.block_size = block_size;
        cfg.cache.prefetch = 0;
        ProxyNode::new(cfg)
    }

    fn open(path: &str, write: bool) -> Msg {
        ClientMsg::Open { path: path.into(), write, refresh: false, avoid: None }.into()
    }

    /// Walks a proxy through resolve → open → stat for `path` of `size`
    /// bytes and returns the client's handle.
    fn resolve(p: &mut ProxyNode, ctx: &mut MockCtx, path: &str, size: u64) -> u64 {
        p.on_message(ctx, CLIENT, open(path, false));
        // Resolve goes to the manager.
        let sends = ctx.take_sends();
        assert!(
            matches!(&sends[0], (a, Msg::Client(ClientMsg::Open { write: false, .. })) if *a == MGR),
            "{sends:?}"
        );
        // Manager redirects to the data server.
        p.on_message(ctx, MGR, Msg::Server(ServerMsg::Redirect { host: "srv-0".into() }));
        let sends = ctx.take_sends();
        assert!(matches!(&sends[0], (a, Msg::Client(ClientMsg::Open { .. })) if *a == SRV));
        // Server opens; proxy stats for the size.
        p.on_message(ctx, SRV, Msg::Server(ServerMsg::OpenOk { handle: 77 }));
        let sends = ctx.take_sends();
        assert!(matches!(&sends[0], (a, Msg::Client(ClientMsg::Stat { .. })) if *a == SRV));
        p.on_message(ctx, SRV, Msg::Server(ServerMsg::StatOk { size, online: true }));
        let sends = ctx.take_sends();
        match &sends[0] {
            (a, Msg::Server(ServerMsg::OpenOk { handle })) if *a == CLIENT => *handle,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn write_open_redirects_to_the_real_redirector() {
        let mut p = proxy(1024);
        let mut ctx = MockCtx::new();
        p.on_message(&mut ctx, CLIENT, open("/d/f", true));
        match &ctx.sends[0] {
            (a, Msg::Server(ServerMsg::Redirect { host })) if *a == CLIENT => {
                assert_eq!(host, "mgr-0");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cold_read_fills_from_origin_then_serves() {
        let mut p = proxy(1024);
        let mut ctx = MockCtx::new();
        let h = resolve(&mut p, &mut ctx, "/d/f", 2048);
        // Read both blocks: misses, so fills go out — window of one.
        p.on_message(&mut ctx, CLIENT, ClientMsg::Read { handle: h, offset: 0, len: 2048 }.into());
        let sends = ctx.take_sends();
        assert_eq!(sends.len(), 1, "strict per-link window: {sends:?}");
        assert!(matches!(
            &sends[0],
            (a, Msg::Client(ClientMsg::Read { handle: 77, offset: 0, len: 1024 })) if *a == SRV
        ));
        p.on_message(&mut ctx, SRV, Msg::Server(ServerMsg::Data { data: vec![1u8; 1024].into() }));
        let sends = ctx.take_sends();
        assert!(matches!(
            &sends[0],
            (_, Msg::Client(ClientMsg::Read { offset: 1024, len: 1024, .. }))
        ));
        p.on_message(&mut ctx, SRV, Msg::Server(ServerMsg::Data { data: vec![2u8; 1024].into() }));
        let sends = ctx.take_sends();
        // Client gets the assembled read, the parent gets the V_h advert,
        // and the origin handle is released.
        let data = sends
            .iter()
            .find_map(|(a, m)| match (a, m) {
                (a, Msg::Server(ServerMsg::Data { data })) if *a == CLIENT => Some(data.clone()),
                _ => None,
            })
            .expect("client reply in {sends:?}");
        assert_eq!(data.len(), 2048);
        assert_eq!(&data[..1024], &[1u8; 1024][..]);
        assert_eq!(&data[1024..], &[2u8; 1024][..]);
        assert!(sends.iter().any(|(a, m)| *a == MGR
            && matches!(m, Msg::Cms(CmsMsg::Have { reqid: 0, staging: false, .. }))));
        assert!(sends
            .iter()
            .any(|(a, m)| *a == SRV && matches!(m, Msg::Client(ClientMsg::Close { handle: 77 }))));
        assert!(p.is_advertised("/d/f"));

        // Warm read: served straight from cache, zero origin traffic.
        p.on_message(
            &mut ctx,
            CLIENT,
            ClientMsg::Read { handle: h, offset: 512, len: 1024 }.into(),
        );
        let sends = ctx.take_sends();
        assert_eq!(sends.len(), 1);
        match &sends[0] {
            (a, Msg::Server(ServerMsg::Data { data })) if *a == CLIENT => {
                assert_eq!(data.len(), 1024);
                assert_eq!(&data[..512], &[1u8; 512][..]);
                assert_eq!(&data[512..], &[2u8; 512][..]);
            }
            other => panic!("{other:?}"),
        }
        let stats = p.store().stats();
        assert_eq!(stats.inserts, 2);
        assert!(stats.hits >= 2, "warm read hit both blocks: {stats:?}");
    }

    #[test]
    fn concurrent_misses_coalesce_into_one_fetch() {
        let mut p = proxy(1024);
        let mut ctx = MockCtx::new();
        let h1 = resolve(&mut p, &mut ctx, "/d/f", 1024);
        p.on_message(&mut ctx, CLIENT2, open("/d/f", false));
        let h2 = match &ctx.take_sends()[0] {
            (_, Msg::Server(ServerMsg::OpenOk { handle })) => *handle,
            other => panic!("{other:?}"),
        };
        assert_ne!(h1, h2);
        p.on_message(&mut ctx, CLIENT, ClientMsg::Read { handle: h1, offset: 0, len: 1024 }.into());
        p.on_message(&mut ctx, CLIENT2, ClientMsg::Read { handle: h2, offset: 0, len: 512 }.into());
        let sends = ctx.take_sends();
        let fetches = sends
            .iter()
            .filter(|(a, m)| *a == SRV && matches!(m, Msg::Client(ClientMsg::Read { .. })))
            .count();
        assert_eq!(fetches, 1, "single-flight: one origin fetch for both readers");
        // The one fill releases both pending reads.
        p.on_message(&mut ctx, SRV, Msg::Server(ServerMsg::Data { data: vec![7u8; 1024].into() }));
        let sends = ctx.take_sends();
        let replies: Vec<&Addr> = sends
            .iter()
            .filter_map(|(a, m)| matches!(m, Msg::Server(ServerMsg::Data { .. })).then_some(a))
            .collect();
        assert!(replies.contains(&&CLIENT) && replies.contains(&&CLIENT2), "{sends:?}");
    }

    #[test]
    fn prefetch_claims_blocks_ahead() {
        let mut p = {
            let dir = Arc::new(Directory::new());
            dir.register("mgr-0", MGR);
            dir.register("srv-0", SRV);
            let mut cfg = ProxyConfig::new("pxy-0", MGR, dir);
            cfg.cache.block_size = 1024;
            cfg.cache.prefetch = 2;
            ProxyNode::new(cfg)
        };
        let mut ctx = MockCtx::new();
        let h = resolve(&mut p, &mut ctx, "/d/f", 8192);
        p.on_message(&mut ctx, CLIENT, ClientMsg::Read { handle: h, offset: 0, len: 1024 }.into());
        // Demand block 0 plus prefetch of blocks 1 and 2 are all ticketed.
        assert_eq!(p.store().pinned_count(), 3);
    }

    #[test]
    fn origin_error_triggers_refresh_with_avoid() {
        let mut p = proxy(1024);
        let mut ctx = MockCtx::new();
        let h = resolve(&mut p, &mut ctx, "/d/f", 1024);
        p.on_message(&mut ctx, CLIENT, ClientMsg::Read { handle: h, offset: 0, len: 1024 }.into());
        ctx.take_sends();
        // The fill fails: proxy re-resolves, refreshing and avoiding srv-0.
        p.on_message(
            &mut ctx,
            SRV,
            Msg::Server(ServerMsg::Error { code: ErrCode::IoError, detail: "lost".into() }),
        );
        let sends = ctx.take_sends();
        match &sends[0] {
            (a, Msg::Client(ClientMsg::Open { refresh: true, avoid: Some(av), .. }))
                if *a == MGR =>
            {
                assert_eq!(av, "srv-0");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn locate_answers_have_only_when_fully_cached() {
        let mut p = proxy(1024);
        let mut ctx = MockCtx::new();
        let locate: Msg =
            CmsMsg::Locate { reqid: 4, path: "/d/f".into(), hash: crc32(b"/d/f"), write: false }
                .into();
        p.on_message(&mut ctx, MGR, locate.clone());
        assert!(ctx.sends.is_empty(), "unknown file: silent");
        let h = resolve(&mut p, &mut ctx, "/d/f", 1024);
        p.on_message(&mut ctx, MGR, locate.clone());
        assert!(ctx.sends.is_empty(), "not yet cached: silent");
        p.on_message(&mut ctx, CLIENT, ClientMsg::Read { handle: h, offset: 0, len: 1024 }.into());
        ctx.take_sends();
        p.on_message(&mut ctx, SRV, Msg::Server(ServerMsg::Data { data: vec![0u8; 1024].into() }));
        ctx.take_sends();
        p.on_message(&mut ctx, MGR, locate);
        assert!(
            matches!(&ctx.sends[0], (a, Msg::Cms(CmsMsg::Have { reqid: 4, .. })) if *a == MGR),
            "{:?}",
            ctx.sends
        );
    }

    #[test]
    fn login_and_heartbeat_look_like_a_data_server() {
        let mut p = proxy(1024);
        let mut ctx = MockCtx::new();
        p.on_start(&mut ctx);
        assert!(matches!(
            &ctx.sends[0],
            (a, Msg::Cms(CmsMsg::Login { role: NodeRoleTag::Server, .. })) if *a == MGR
        ));
        ctx.take_sends();
        p.on_timer(&mut ctx, tokens::HEARTBEAT);
        assert!(matches!(&ctx.sends[0], (_, Msg::Cms(CmsMsg::LoadReport { .. }))));
    }

    #[test]
    fn stale_reply_with_nothing_outstanding_is_dropped() {
        let mut p = proxy(1024);
        let mut ctx = MockCtx::new();
        p.on_message(&mut ctx, SRV, Msg::Server(ServerMsg::CloseOk));
        p.on_message(&mut ctx, SRV, Msg::Server(ServerMsg::Data { data: Bytes::new() }));
        assert!(ctx.sends.is_empty());
    }

    #[test]
    fn read_past_eof_returns_empty() {
        let mut p = proxy(1024);
        let mut ctx = MockCtx::new();
        let h = resolve(&mut p, &mut ctx, "/d/f", 100);
        p.on_message(&mut ctx, CLIENT, ClientMsg::Read { handle: h, offset: 500, len: 10 }.into());
        assert!(matches!(
            &ctx.sends[0],
            (a, Msg::Server(ServerMsg::Data { data })) if *a == CLIENT && data.is_empty()
        ));
    }
}
