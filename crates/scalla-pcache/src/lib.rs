//! Block-caching proxy data-server tier (§II-B6 deployment model).
//!
//! Scalla's deployment model places proxy servers between clients and
//! the cluster to absorb repeated reads and to bridge administrative
//! domains; the XRootD ecosystem later grew this into the on-demand
//! storage cache ("XCache"). This crate reproduces that tier on top of
//! the existing control plane:
//!
//! * [`BlockStore`] — a sharded, byte-accounted block cache with
//!   high/low-watermark LRU eviction and single-flight fill pins.
//! * [`ProxyNode`] — a [`scalla_simnet::Node`] that joins a cmsd as an
//!   ordinary data server, serves `Open`/`Read`/`Close` from the block
//!   store, fetches misses from the owning origin server, and
//!   advertises fully-cached files upward (`Have{reqid: 0}`) so the
//!   resolver's V_h set redirects other clients to the proxy.
//!
//! The node runs unmodified on all three runtimes (simnet, live
//! threads, TCP) because it is written against `NetCtx` like every
//! other node in the tree.

#![warn(missing_docs)]

mod proxy;
mod store;

pub use proxy::{tokens, ProxyConfig, ProxyNode};
pub use store::{BlockKey, BlockStore, PcacheConfig, PcacheStats, PinOutcome};
