//! The sharded block store behind a proxy node.
//!
//! Files are cached at block granularity (configurable, 64 KiB by
//! default). Each block lives in one of N independently locked shards,
//! selected by a hash of `(path, block index)`; byte accounting is a
//! single atomic shared by all shards so watermark decisions see the
//! whole store. Eviction is LRU per shard with a round-robin sweep
//! across shards: once `used > high watermark`, least-recently-used
//! blocks are discarded until `used <= low watermark`. Blocks whose
//! fill is still in flight are *pinned* placeholders — they hold no
//! bytes and are never eviction victims, which is what makes
//! single-flight coalescing safe (the fill's ticket cannot be evicted
//! from under the waiters).

use bytes::Bytes;
use parking_lot::Mutex;
use scalla_util::crc32;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Proxy cache tuning.
#[derive(Clone, Debug)]
pub struct PcacheConfig {
    /// Cache block size in bytes (the fetch/eviction granule).
    pub block_size: u32,
    /// Total cache capacity in bytes.
    pub capacity: u64,
    /// Eviction trigger: permille of capacity (e.g. 900 = 90 %).
    pub high_permille: u32,
    /// Eviction target: permille of capacity eviction drains down to.
    pub low_permille: u32,
    /// Sequential prefetch depth in blocks past the last requested
    /// block (0 disables prefetch).
    pub prefetch: u32,
    /// Number of independently locked shards.
    pub shards: usize,
}

impl Default for PcacheConfig {
    fn default() -> PcacheConfig {
        PcacheConfig {
            block_size: 64 << 10,
            capacity: 256 << 20,
            high_permille: 900,
            low_permille: 700,
            prefetch: 2,
            shards: 8,
        }
    }
}

impl PcacheConfig {
    /// The high watermark in bytes: eviction starts above this.
    pub fn high_bytes(&self) -> u64 {
        (self.capacity as u128 * self.high_permille.min(1000) as u128 / 1000) as u64
    }

    /// The low watermark in bytes: eviction drains down to this.
    pub fn low_bytes(&self) -> u64 {
        let low = self.low_permille.min(self.high_permille);
        (self.capacity as u128 * low.min(1000) as u128 / 1000) as u64
    }

    /// Number of blocks covering a file of `size` bytes.
    pub fn blocks_for(&self, size: u64) -> u64 {
        size.div_ceil(self.block_size as u64)
    }

    /// Length of block `index` of a file of `size` bytes (the tail block
    /// may be short).
    pub fn block_len(&self, size: u64, index: u64) -> u64 {
        let bs = self.block_size as u64;
        let start = index * bs;
        size.saturating_sub(start).min(bs)
    }
}

/// Identity of one cached block: file path plus block index.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct BlockKey {
    /// The file the block belongs to.
    pub path: Arc<str>,
    /// Block index within the file (`offset / block_size`).
    pub index: u64,
}

impl BlockKey {
    /// Key for block `index` of `path`.
    pub fn new(path: impl Into<Arc<str>>, index: u64) -> BlockKey {
        BlockKey { path: path.into(), index }
    }
}

/// Outcome of a single-flight pin attempt.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PinOutcome {
    /// The block is already cached — no fetch needed.
    Present,
    /// The caller now owns the (single) in-flight fill for this block.
    Pinned,
    /// Another fill is already in flight — coalesce onto it.
    AlreadyPinned,
}

struct Slot {
    data: Bytes,
    /// LRU generation stamp; queue entries with stale stamps are skipped.
    gen: u64,
    /// In-flight fill placeholder: holds no bytes, never evicted.
    pinned: bool,
}

#[derive(Default)]
struct ShardInner {
    map: HashMap<BlockKey, Slot>,
    /// LRU order with lazy deletion: `(key, gen)` pairs, stale when the
    /// slot's current gen differs.
    lru: VecDeque<(BlockKey, u64)>,
    next_gen: u64,
}

impl ShardInner {
    fn touch(&mut self, key: &BlockKey) {
        self.next_gen += 1;
        let gen = self.next_gen;
        if let Some(slot) = self.map.get_mut(key) {
            slot.gen = gen;
        }
        self.lru.push_back((key.clone(), gen));
        self.maybe_compact();
    }

    fn maybe_compact(&mut self) {
        if self.lru.len() > 4 * self.map.len() + 64 {
            let map = &self.map;
            self.lru.retain(|(k, g)| map.get(k).is_some_and(|s| s.gen == *g && !s.pinned));
        }
    }
}

/// Point-in-time copy of the store's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PcacheStats {
    /// Block look-ups served from cache.
    pub hits: u64,
    /// Block look-ups that missed.
    pub misses: u64,
    /// Blocks discarded by watermark eviction.
    pub evictions: u64,
    /// Blocks inserted (fills completed).
    pub inserts: u64,
    /// Bytes inserted by fills.
    pub bytes_inserted: u64,
    /// Bytes discarded by eviction.
    pub bytes_evicted: u64,
}

impl PcacheStats {
    /// Hit fraction over all look-ups so far (0 when none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Default)]
struct StatCells {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    inserts: AtomicU64,
    bytes_inserted: AtomicU64,
    bytes_evicted: AtomicU64,
}

/// The sharded, byte-accounted block cache.
pub struct BlockStore {
    cfg: PcacheConfig,
    shards: Vec<Mutex<ShardInner>>,
    used: AtomicU64,
    evict_cursor: AtomicUsize,
    stats: StatCells,
}

impl BlockStore {
    /// An empty store with `cfg` tuning.
    pub fn new(cfg: PcacheConfig) -> BlockStore {
        let n = cfg.shards.max(1);
        BlockStore {
            cfg,
            shards: (0..n).map(|_| Mutex::new(ShardInner::default())).collect(),
            used: AtomicU64::new(0),
            evict_cursor: AtomicUsize::new(0),
            stats: StatCells::default(),
        }
    }

    /// The tuning this store was built with.
    pub fn config(&self) -> &PcacheConfig {
        &self.cfg
    }

    fn shard_for(&self, key: &BlockKey) -> &Mutex<ShardInner> {
        let h = crc32(key.path.as_bytes()) as u64 ^ key.index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Looks a block up, counting a hit or miss and refreshing LRU order.
    pub fn get(&self, key: &BlockKey) -> Option<Bytes> {
        let mut shard = self.shard_for(key).lock();
        match shard.map.get(key) {
            Some(slot) if !slot.pinned => {
                let data = slot.data.clone();
                shard.touch(key);
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(data)
            }
            _ => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Looks a block up without touching the hit/miss counters (assembly
    /// of an already-counted pending read). Still refreshes LRU order.
    pub fn peek_block(&self, key: &BlockKey) -> Option<Bytes> {
        let mut shard = self.shard_for(key).lock();
        match shard.map.get(key) {
            Some(slot) if !slot.pinned => {
                let data = slot.data.clone();
                shard.touch(key);
                Some(data)
            }
            _ => None,
        }
    }

    /// Whether the block is cached (pins don't count). No stats, no
    /// LRU effect.
    pub fn contains(&self, key: &BlockKey) -> bool {
        self.shard_for(key).lock().map.get(key).is_some_and(|s| !s.pinned)
    }

    /// Single-flight gate: claims the fill for an absent block. Exactly
    /// one caller gets [`PinOutcome::Pinned`] per absent block; everyone
    /// else coalesces.
    pub fn try_pin(&self, key: &BlockKey) -> PinOutcome {
        let mut shard = self.shard_for(key).lock();
        match shard.map.get(key) {
            Some(slot) if slot.pinned => PinOutcome::AlreadyPinned,
            Some(_) => PinOutcome::Present,
            None => {
                shard.map.insert(key.clone(), Slot { data: Bytes::new(), gen: 0, pinned: true });
                PinOutcome::Pinned
            }
        }
    }

    /// Abandons an in-flight fill (origin fetch failed) so a later
    /// request can re-claim the block.
    pub fn unpin(&self, key: &BlockKey) {
        let mut shard = self.shard_for(key).lock();
        if shard.map.get(key).is_some_and(|s| s.pinned) {
            shard.map.remove(key);
        }
    }

    /// Completes a fill: stores the bytes (clearing any pin), accounts
    /// them, and evicts down to the low watermark if the high watermark
    /// was crossed.
    pub fn insert(&self, key: BlockKey, data: Bytes) {
        let len = data.len() as u64;
        {
            let mut shard = self.shard_for(&key).lock();
            shard.next_gen += 1;
            let gen = shard.next_gen;
            if let Some(prev) = shard.map.insert(key.clone(), Slot { data, gen, pinned: false }) {
                if !prev.pinned {
                    self.used.fetch_sub(prev.data.len() as u64, Ordering::Relaxed);
                }
            }
            shard.lru.push_back((key, gen));
            shard.maybe_compact();
        }
        self.used.fetch_add(len, Ordering::Relaxed);
        self.stats.inserts.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes_inserted.fetch_add(len, Ordering::Relaxed);
        self.maybe_evict();
    }

    /// Drains LRU blocks until `used <= low watermark`, sweeping shards
    /// round-robin. Pinned placeholders are never victims; if a full
    /// cycle over every shard finds nothing evictable the sweep stops.
    fn maybe_evict(&self) {
        if self.used.load(Ordering::Relaxed) <= self.cfg.high_bytes() {
            return;
        }
        let target = self.cfg.low_bytes();
        let n = self.shards.len();
        let mut fruitless = 0usize;
        while self.used.load(Ordering::Relaxed) > target && fruitless < n {
            let i = self.evict_cursor.fetch_add(1, Ordering::Relaxed) % n;
            let mut shard = self.shards[i].lock();
            let mut evicted = false;
            while let Some((key, gen)) = shard.lru.pop_front() {
                let live = shard.map.get(&key).is_some_and(|s| s.gen == gen && !s.pinned);
                if !live {
                    continue; // stale queue entry (retouched or removed)
                }
                let slot = shard.map.remove(&key).expect("checked live above");
                let len = slot.data.len() as u64;
                self.used.fetch_sub(len, Ordering::Relaxed);
                self.stats.evictions.fetch_add(1, Ordering::Relaxed);
                self.stats.bytes_evicted.fetch_add(len, Ordering::Relaxed);
                evicted = true;
                break;
            }
            drop(shard);
            fruitless = if evicted { 0 } else { fruitless + 1 };
        }
    }

    /// Bytes currently cached (pinned placeholders hold none).
    pub fn used_bytes(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// Number of cached blocks (excluding in-flight pins).
    pub fn block_count(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.values().filter(|v| !v.pinned).count()).sum()
    }

    /// Number of in-flight pins.
    pub fn pinned_count(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.values().filter(|v| v.pinned).count()).sum()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PcacheStats {
        PcacheStats {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
            inserts: self.stats.inserts.load(Ordering::Relaxed),
            bytes_inserted: self.stats.bytes_inserted.load(Ordering::Relaxed),
            bytes_evicted: self.stats.bytes_evicted.load(Ordering::Relaxed),
        }
    }

    /// Registers a scrape-time collector mirroring this store's counters
    /// into `obs`'s registry, labelled with the owning proxy's name.
    pub fn register_collector(store: Arc<BlockStore>, obs: &scalla_obs::Obs, proxy: &str) {
        if !obs.is_enabled() {
            return;
        }
        let proxy = proxy.to_string();
        obs.registry().add_collector(Box::new(move |reg| {
            let labels = [("proxy", proxy.as_str())];
            let s = store.stats();
            reg.counter("scalla_pcache_block_hits_total", &labels).set(s.hits);
            reg.counter("scalla_pcache_block_misses_total", &labels).set(s.misses);
            reg.counter("scalla_pcache_evictions_total", &labels).set(s.evictions);
            reg.counter("scalla_pcache_fills_total", &labels).set(s.inserts);
            reg.counter("scalla_pcache_bytes_filled_total", &labels).set(s.bytes_inserted);
            reg.counter("scalla_pcache_bytes_evicted_total", &labels).set(s.bytes_evicted);
            reg.gauge("scalla_pcache_used_bytes", &labels).set(store.used_bytes());
            reg.gauge("scalla_pcache_capacity_bytes", &labels).set(store.config().capacity);
            reg.gauge("scalla_pcache_blocks", &labels).set(store.block_count() as u64);
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(capacity: u64) -> PcacheConfig {
        PcacheConfig { block_size: 1024, capacity, shards: 4, ..PcacheConfig::default() }
    }

    fn block(n: usize) -> Bytes {
        Bytes::from(vec![0xA5u8; n])
    }

    #[test]
    fn hit_miss_and_accounting() {
        let s = BlockStore::new(cfg(1 << 20));
        let k = BlockKey::new("/f", 0);
        assert!(s.get(&k).is_none());
        s.insert(k.clone(), block(1024));
        assert_eq!(s.get(&k).unwrap().len(), 1024);
        assert_eq!(s.used_bytes(), 1024);
        let st = s.stats();
        assert_eq!((st.hits, st.misses, st.inserts), (1, 1, 1));
    }

    #[test]
    fn watermark_eviction_converges_to_low() {
        // capacity 10 KiB, high 90% = 9216, low 70% = 7168.
        let c = cfg(10 << 10);
        let s = BlockStore::new(c.clone());
        let mut drained = false;
        for i in 0..20u64 {
            let before = s.used_bytes();
            s.insert(BlockKey::new("/f", i), block(1024));
            assert!(s.used_bytes() <= c.capacity, "never exceeds capacity");
            if before + 1024 > c.high_bytes() {
                // Crossing the high watermark drains all the way to low.
                assert!(s.used_bytes() <= c.low_bytes(), "drained to low watermark");
                drained = true;
            }
        }
        assert!(drained, "pressure reached the high watermark");
        assert!(s.used_bytes() <= c.high_bytes());
        assert!(s.stats().evictions > 0);
    }

    #[test]
    fn lru_evicts_coldest_first() {
        let c = PcacheConfig { block_size: 1024, capacity: 4096, shards: 1, ..Default::default() };
        let s = BlockStore::new(c);
        for i in 0..3u64 {
            s.insert(BlockKey::new("/f", i), block(1024));
        }
        // Touch block 0 so block 1 is the coldest.
        assert!(s.get(&BlockKey::new("/f", 0)).is_some());
        s.insert(BlockKey::new("/f", 3), block(1024));
        s.insert(BlockKey::new("/f", 4), block(1024));
        assert!(s.contains(&BlockKey::new("/f", 0)), "recently touched survives");
        assert!(!s.contains(&BlockKey::new("/f", 1)), "coldest evicted");
    }

    #[test]
    fn single_flight_pin_protocol() {
        let s = BlockStore::new(cfg(1 << 20));
        let k = BlockKey::new("/f", 7);
        assert_eq!(s.try_pin(&k), PinOutcome::Pinned, "first claimant owns the fill");
        assert_eq!(s.try_pin(&k), PinOutcome::AlreadyPinned, "second coalesces");
        assert!(s.get(&k).is_none(), "pin is not a cached block");
        assert_eq!(s.pinned_count(), 1);
        s.insert(k.clone(), block(512));
        assert_eq!(s.try_pin(&k), PinOutcome::Present);
        assert_eq!(s.pinned_count(), 0);
    }

    #[test]
    fn unpin_releases_the_claim() {
        let s = BlockStore::new(cfg(1 << 20));
        let k = BlockKey::new("/f", 0);
        assert_eq!(s.try_pin(&k), PinOutcome::Pinned);
        s.unpin(&k);
        assert_eq!(s.try_pin(&k), PinOutcome::Pinned, "claimable again after abort");
        // Unpin never removes real data.
        s.insert(k.clone(), block(10));
        s.unpin(&k);
        assert!(s.contains(&k));
    }

    #[test]
    fn pinned_blocks_survive_eviction_pressure() {
        let c = PcacheConfig { block_size: 1024, capacity: 4096, shards: 2, ..Default::default() };
        let s = BlockStore::new(c);
        let pinned = BlockKey::new("/hot", 0);
        assert_eq!(s.try_pin(&pinned), PinOutcome::Pinned);
        for i in 0..50u64 {
            s.insert(BlockKey::new("/cold", i), block(1024));
        }
        assert_eq!(s.try_pin(&pinned), PinOutcome::AlreadyPinned, "pin survived the churn");
    }

    #[test]
    fn block_math() {
        let c = PcacheConfig { block_size: 1024, ..Default::default() };
        assert_eq!(c.blocks_for(0), 0);
        assert_eq!(c.blocks_for(1), 1);
        assert_eq!(c.blocks_for(1024), 1);
        assert_eq!(c.blocks_for(1025), 2);
        assert_eq!(c.block_len(1500, 0), 1024);
        assert_eq!(c.block_len(1500, 1), 476);
        assert_eq!(c.block_len(1500, 2), 0);
    }

    #[test]
    fn reinsert_replaces_accounting() {
        let s = BlockStore::new(cfg(1 << 20));
        let k = BlockKey::new("/f", 0);
        s.insert(k.clone(), block(1000));
        s.insert(k.clone(), block(200));
        assert_eq!(s.used_bytes(), 200, "old bytes released on overwrite");
        assert_eq!(s.block_count(), 1);
    }
}
