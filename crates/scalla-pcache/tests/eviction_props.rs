//! Property tests for the block store's eviction machinery.
//!
//! Whatever interleaving of fills, look-ups, single-flight pins, and
//! aborted fills a proxy produces, the store must uphold:
//!
//! * byte accounting never exceeds capacity, and settles at or below
//!   the high watermark after every completed insert;
//! * crossing the high watermark drains the store to the low watermark
//!   in the same call (watermark convergence);
//! * pinned (in-flight) placeholders are never eviction victims, no
//!   matter how much churn passes through the other blocks;
//! * `used_bytes` equals the byte-sum of the blocks actually resident,
//!   and stays consistent with the insert/evict counters.

use bytes::Bytes;
use proptest::prelude::*;
use scalla_pcache::{BlockKey, BlockStore, PcacheConfig, PinOutcome};
use std::collections::HashSet;

const PATHS: u8 = 4;
const INDICES: u64 = 16;

#[derive(Debug, Clone)]
enum Op {
    /// Complete a fill of `len` bytes (clears any pin on the key).
    Insert { path: u8, index: u64, len: u16 },
    /// Client look-up (refreshes LRU order).
    Get { path: u8, index: u64 },
    /// Claim the single-flight fill ticket.
    Pin { path: u8, index: u64 },
    /// Abort an in-flight fill.
    Unpin { path: u8, index: u64 },
}

fn op_strategy(block_size: u16) -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0..PATHS, 0..INDICES, 1..=block_size)
            .prop_map(|(path, index, len)| Op::Insert { path, index, len }),
        3 => (0..PATHS, 0..INDICES).prop_map(|(path, index)| Op::Get { path, index }),
        2 => (0..PATHS, 0..INDICES).prop_map(|(path, index)| Op::Pin { path, index }),
        1 => (0..PATHS, 0..INDICES).prop_map(|(path, index)| Op::Unpin { path, index }),
    ]
}

fn key(path: u8, index: u64) -> BlockKey {
    BlockKey::new(format!("/prop/f{path}"), index)
}

/// Sum of resident bytes, observed through the public API.
fn resident_bytes(store: &BlockStore) -> u64 {
    let mut total = 0u64;
    for p in 0..PATHS {
        for i in 0..INDICES {
            if let Some(b) = store.peek_block(&key(p, i)) {
                total += b.len() as u64;
            }
        }
    }
    total
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn accounting_and_watermarks_hold_under_any_sequence(
        ops in proptest::collection::vec(op_strategy(512), 1..200),
        shards in 1usize..5,
    ) {
        // Capacity 8 KiB, high 90 % = 7372, low 600 ‰ = 4915: a couple
        // dozen 512-byte blocks force repeated watermark crossings.
        let cfg = PcacheConfig {
            block_size: 512,
            capacity: 8 << 10,
            high_permille: 900,
            low_permille: 600,
            shards,
            ..PcacheConfig::default()
        };
        let (high, low, capacity) = (cfg.high_bytes(), cfg.low_bytes(), cfg.capacity);
        let store = BlockStore::new(cfg);
        for op in &ops {
            match *op {
                Op::Insert { path, index, len } => {
                    // An insert over an existing key releases the old bytes,
                    // so "crossed high" is only observable as "evicted
                    // something" — and any eviction must drain all the way.
                    let evictions_before = store.stats().evictions;
                    store.insert(key(path, index), Bytes::from(vec![0u8; len as usize]));
                    if store.stats().evictions > evictions_before {
                        prop_assert!(
                            store.used_bytes() <= low,
                            "crossing high ({high}) must drain to low ({low}), used={}",
                            store.used_bytes()
                        );
                    }
                }
                Op::Get { path, index } => {
                    store.get(&key(path, index));
                }
                Op::Pin { path, index } => {
                    store.try_pin(&key(path, index));
                }
                Op::Unpin { path, index } => {
                    store.unpin(&key(path, index));
                }
            }
            prop_assert!(store.used_bytes() <= capacity, "accounting within capacity");
            prop_assert!(store.used_bytes() <= high, "settles at or below high watermark");
        }
        // The atomic byte counter matches what is actually resident, and
        // is consistent with the flow counters (overwrites release extra
        // bytes beyond what eviction counted, hence inequality).
        let st = store.stats();
        prop_assert_eq!(store.used_bytes(), resident_bytes(&store));
        prop_assert!(store.used_bytes() + st.bytes_evicted <= st.bytes_inserted);
        prop_assert!(st.bytes_evicted <= st.bytes_inserted);
    }

    #[test]
    fn pinned_blocks_are_never_evicted(
        pins in proptest::collection::vec((0..PATHS, 0..INDICES), 1..8),
        churn in proptest::collection::vec((0..PATHS, 0..INDICES, 1u16..=512), 20..120),
    ) {
        let cfg = PcacheConfig {
            block_size: 512,
            capacity: 4 << 10,
            high_permille: 900,
            low_permille: 500,
            shards: 2,
            ..PcacheConfig::default()
        };
        let store = BlockStore::new(cfg);
        let mut pinned: HashSet<BlockKey> = HashSet::new();
        for &(p, i) in &pins {
            if store.try_pin(&key(p, i)) == PinOutcome::Pinned {
                pinned.insert(key(p, i));
            }
        }
        prop_assert_eq!(store.pinned_count(), pinned.len());
        for &(p, i, len) in &churn {
            let k = key(p, i);
            if pinned.contains(&k) {
                continue; // keep the pins in flight throughout the churn
            }
            store.insert(k, Bytes::from(vec![0u8; len as usize]));
            for k in &pinned {
                prop_assert_eq!(
                    store.try_pin(k),
                    PinOutcome::AlreadyPinned,
                    "pin lost under eviction pressure"
                );
            }
        }
        prop_assert_eq!(store.pinned_count(), pinned.len());
        // Completing the fills converts every pin into a resident block.
        for k in &pinned {
            store.insert(k.clone(), Bytes::from(vec![1u8; 64]));
            prop_assert!(store.contains(k));
        }
        prop_assert_eq!(store.pinned_count(), 0);
    }
}
