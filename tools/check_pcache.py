#!/usr/bin/env python3
"""Validates BENCH_pcache.json, written by `cargo run --example pcache_run`.

Checks the schema and the proxy-cache acceptance conditions: the
hit-rate curve starts cold and converges upward (final round at least
90 % hits, strictly above the first round), warm reads are faster than
cold reads at the median, every file ended fully cached, and the byte
accounting is self-consistent (the origin was only crossed for fills).

Usage: python3 tools/check_pcache.py BENCH_pcache.json [--smoke]

--smoke relaxes nothing but is accepted for CI-invocation symmetry with
the other checkers; the correctness conditions are identical.
"""
import json
import sys

NUM = (int, float)

TOP_KEYS = {
    "bench": str,
    "mode": str,
    "block_size": int,
    "file_size": int,
    "files": int,
    "rounds": int,
    "hit_rate_curve": list,
    "cold_read_ns": dict,
    "warm_read_ns": dict,
    "warm_speedup": NUM,
    "origin_bytes": int,
    "cache_bytes": int,
    "fills": int,
    "evictions": int,
    "fully_cached_files": int,
}

LATENCY_KEYS = {"p50": NUM, "p99": NUM}


def fail(msg: str) -> None:
    sys.exit(f"check_pcache: FAIL: {msg}")


def check_keys(obj: dict, spec: dict, where: str) -> None:
    for key, typ in spec.items():
        if key not in obj:
            fail(f"{where}: missing key {key!r}")
        if not isinstance(obj[key], typ):
            fail(f"{where}.{key}: expected {typ}, got {type(obj[key]).__name__}")


def check_latency(lat: dict, where: str) -> None:
    check_keys(lat, LATENCY_KEYS, where)
    if not 0 < lat["p50"] <= lat["p99"]:
        fail(f"{where}: percentiles out of order: {lat}")


def main() -> None:
    args = [a for a in sys.argv[1:] if a != "--smoke"]
    if len(args) != 1:
        fail("usage: check_pcache.py BENCH_pcache.json [--smoke]")
    with open(args[0]) as f:
        doc = json.load(f)

    check_keys(doc, TOP_KEYS, "top")
    if doc["bench"] != "pcache":
        fail(f"bench is {doc['bench']!r}")
    if doc["mode"] not in ("smoke", "full"):
        fail(f"mode is {doc['mode']!r}")
    check_latency(doc["cold_read_ns"], "cold_read_ns")
    check_latency(doc["warm_read_ns"], "warm_read_ns")

    curve = doc["hit_rate_curve"]
    if len(curve) != doc["rounds"]:
        fail(f"curve has {len(curve)} points for {doc['rounds']} rounds")
    if doc["rounds"] < 2:
        fail("need at least a cold round and one warm round")
    for i, r in enumerate(curve):
        if not isinstance(r, NUM) or not 0.0 <= r <= 1.0:
            fail(f"hit_rate_curve[{i}] out of range: {r!r}")
    if curve[0] > 0.5:
        fail(f"first round should be cold, hit rate {curve[0]:.3f}")
    if curve[-1] < 0.9:
        fail(f"hit rate failed to converge: final round {curve[-1]:.3f}")
    if curve[-1] <= curve[0]:
        fail(f"hit rate must rise across rounds: {curve[0]:.3f} -> {curve[-1]:.3f}")

    if doc["warm_read_ns"]["p50"] >= doc["cold_read_ns"]["p50"]:
        fail(
            f"warm p50 {doc['warm_read_ns']['p50']:.0f} ns not faster than"
            f" cold p50 {doc['cold_read_ns']['p50']:.0f} ns"
        )
    if doc["warm_speedup"] <= 1.0:
        fail(f"warm_speedup {doc['warm_speedup']} must exceed 1")

    total = doc["files"] * doc["file_size"]
    if doc["origin_bytes"] != total:
        fail(f"origin bytes {doc['origin_bytes']} != one cold pass over {total}")
    if doc["cache_bytes"] < total * (doc["rounds"] - 1):
        fail(
            f"cache bytes {doc['cache_bytes']} below the"
            f" {doc['rounds'] - 1} warm passes over {total}"
        )
    if doc["fills"] * doc["block_size"] < total:
        fail(f"{doc['fills']} fills of {doc['block_size']} B can't cover {total} B")
    if doc["evictions"] < 0:
        fail("negative evictions")
    if doc["fully_cached_files"] != doc["files"]:
        fail(
            f"only {doc['fully_cached_files']}/{doc['files']} files"
            " fully cached and advertised"
        )

    print(
        f"check_pcache: OK ({doc['mode']}): {doc['files']} files x"
        f" {doc['rounds']} rounds, hit rate {curve[0]:.2f} -> {curve[-1]:.2f},"
        f" warm p50 {doc['warm_read_ns']['p50'] / 1e3:.0f} us vs cold"
        f" {doc['cold_read_ns']['p50'] / 1e3:.0f} us"
        f" ({doc['warm_speedup']:.1f}x), {doc['fills']} fills,"
        f" {doc['evictions']} evictions"
    )


if __name__ == "__main__":
    main()
