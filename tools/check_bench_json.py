#!/usr/bin/env python3
"""Validates bench JSON artifacts against their expected schema and
sanity bounds, dispatching on the document's "bench" field:

* BENCH_tcp.json — written by `cargo bench -p bench --bench tcp_wire`
* BENCH_obs.json — written by `cargo bench -p bench --bench obs_overhead`

Usage: python3 tools/check_bench_json.py BENCH_tcp.json [--smoke]

--smoke relaxes the performance assertions for scaled-down CI runs
(tiny bursts on a loaded shared runner may not coalesce, and overhead
ratios from tiny batches are noise), but the schema must always hold.
"""
import json
import sys

NUM = (int, float)

EGRESS_KEYS = {
    "frames": int,
    "writes": int,
    "frames_per_write": NUM,
    "queue_drops": int,
    "conn_drops": int,
    "pool_hits": int,
    "pool_misses": int,
}


def fail(msg: str) -> None:
    sys.exit(f"check_bench_json: FAIL: {msg}")


def check_keys(obj: dict, spec: dict, where: str) -> None:
    for key, typ in spec.items():
        if key not in obj:
            fail(f"{where}: missing key {key!r}")
        if not isinstance(obj[key], typ):
            fail(f"{where}.{key}: expected {typ}, got {type(obj[key]).__name__}")


def check_obs(doc: dict, smoke: bool) -> None:
    check_keys(
        doc,
        {
            "bench": str,
            "mode": str,
            "entries": int,
            "iters_per_batch": int,
            "pairs": int,
            "sample_every": int,
            "noop_ns_per_op": NUM,
            "instrumented_ns_per_op": NUM,
            "overhead_pct": NUM,
            "resolve_samples_recorded": int,
        },
        "top",
    )
    if doc["mode"] not in ("smoke", "full"):
        fail(f"mode is {doc['mode']!r}")
    if doc["noop_ns_per_op"] <= 0 or doc["instrumented_ns_per_op"] <= 0:
        fail("ns/op must be positive")
    if doc["resolve_samples_recorded"] <= 0:
        fail("instrumented run recorded no resolve samples")
    if doc["sample_every"] < 1:
        fail(f"bad sample_every: {doc['sample_every']}")
    # The overhead budget is only meaningful at full scale; smoke batches
    # are too small to measure a few percent on a shared runner.
    bound = 50.0 if smoke else 5.0
    if doc["overhead_pct"] >= bound:
        fail(f"obs overhead {doc['overhead_pct']:.2f}% >= {bound}% ({doc['mode']} mode)")
    print(
        f"check_bench_json: OK ({doc['mode']}): obs overhead"
        f" {doc['overhead_pct']:+.2f}% ({doc['noop_ns_per_op']:.0f} ->"
        f" {doc['instrumented_ns_per_op']:.0f} ns/op,"
        f" {doc['resolve_samples_recorded']} samples)"
    )


def main() -> None:
    args = [a for a in sys.argv[1:] if a != "--smoke"]
    smoke = "--smoke" in sys.argv[1:]
    path = args[0] if args else "BENCH_tcp.json"
    with open(path) as fh:
        doc = json.load(fh)

    if not isinstance(doc, dict) or "bench" not in doc:
        fail(f"{path}: no 'bench' discriminator")
    if doc["bench"] == "obs_overhead":
        check_obs(doc, smoke)
        return

    check_keys(
        doc,
        {"bench": str, "mode": str, "cluster": dict, "burst": dict, "frames_per_syscall": NUM},
        "top",
    )
    if doc["bench"] != "tcp_wire":
        fail(f"bench is {doc['bench']!r}, expected 'tcp_wire'")
    if doc["mode"] not in ("smoke", "full"):
        fail(f"mode is {doc['mode']!r}")

    cluster = doc["cluster"]
    check_keys(
        cluster,
        {
            "clients": int,
            "servers": int,
            "ok": int,
            "failed": int,
            "rtt_ns": dict,
            "ops_per_sec": NUM,
            "egress": dict,
            "mailbox_drops": int,
        },
        "cluster",
    )
    rtt = cluster["rtt_ns"]
    check_keys(rtt, {"p50": int, "p99": int, "mean": int, "max": int}, "cluster.rtt_ns")
    check_keys(cluster["egress"], EGRESS_KEYS, "cluster.egress")

    burst = doc["burst"]
    check_keys(
        burst,
        {"senders": int, "expected_frames": int, "egress": dict, "wire_msgs_per_sec": NUM},
        "burst",
    )
    check_keys(burst["egress"], EGRESS_KEYS, "burst.egress")

    # Sanity bounds.
    if cluster["failed"] != 0:
        fail(f"cluster ops failed: {cluster['failed']}")
    if cluster["ok"] <= 0:
        fail("no successful cluster ops recorded")
    if rtt["p50"] <= 0:
        fail("p50 RTT must be positive")
    if not rtt["p50"] <= rtt["p99"] <= rtt["max"]:
        fail(f"quantiles out of order: p50={rtt['p50']} p99={rtt['p99']} max={rtt['max']}")
    drops = burst["egress"]["queue_drops"] + burst["egress"]["conn_drops"]
    if burst["egress"]["frames"] + drops < burst["expected_frames"]:
        fail(
            f"burst frames unaccounted for: {burst['egress']['frames']} written"
            f" + {drops} dropped < {burst['expected_frames']} expected"
        )

    ratio = doc["frames_per_syscall"]
    floor = 1.0 if smoke else 1.0000001
    op = ">=" if smoke else ">"
    if not ratio >= floor:
        fail(f"frames_per_syscall {ratio} not {op} 1.0 ({doc['mode']} mode)")

    print(
        f"check_bench_json: OK ({doc['mode']}): {cluster['ok']} ops,"
        f" p50={rtt['p50']}ns p99={rtt['p99']}ns,"
        f" coalescing {ratio:.2f} frames/syscall"
    )


if __name__ == "__main__":
    main()
