#!/usr/bin/env python3
"""Re-runs every experiment bench and refreshes the measured output blocks
in EXPERIMENTS.md in place. Usage: python3 tools/regen_experiments.py"""
import re
import subprocess
import sys

BENCHES = [
    "e01_cached_lookup", "e02_uncached_lookup", "e03_load_slope",
    "e04_fibonacci_collisions", "e05_eviction_window", "e06_fast_response",
    "e07_correction_cost", "e08_rechain", "e09_registration", "e10_restart",
    "e11_scaling", "e12_equilibrium", "e13_prepare", "e14_selection",
    "a15_fast_window_margin", "a16_popularity", "a17_fanout",
    "a18_throughput", "a19_rarely_respond", "tcp_wire",
]

def run(name: str) -> str:
    out = subprocess.run(
        ["cargo", "bench", "-p", "bench", "--bench", name],
        capture_output=True, text=True, timeout=1200,
    )
    if out.returncode != 0:
        sys.exit(f"{name} failed:\n{out.stderr}")
    return out.stdout.strip()

def main() -> None:
    text = open("EXPERIMENTS.md").read()
    for name in BENCHES:
        fresh = run(name)
        marker = f"--bench {name}`"
        at = text.find(marker)
        if at < 0:
            sys.exit(f"no section for {name}")
        start = text.find("```text\n", at)
        end = text.find("\n```", start)
        assert start > 0 and end > start, name
        text = text[: start + len("```text\n")] + fresh + text[end:]
        print(f"refreshed {name}")
    open("EXPERIMENTS.md", "w").write(text)

if __name__ == "__main__":
    main()
