#!/usr/bin/env python3
"""Validates BENCH_chaos.json, written by `cargo run --example chaos_run`.

Checks the schema and the chaos-soak acceptance conditions: every plan
covered all three fault profiles, every scripted op terminated, the
structural invariant was never violated, and every `peer_dead` recovery
event was paired with a `peer_reconnected` once the fault plan healed.

Usage: python3 tools/check_chaos.py BENCH_chaos.json [--smoke]

--smoke only relaxes the expected plan count (one seed per profile);
the correctness conditions are identical in both modes.
"""
import json
import sys

NUM = (int, float)

PLAN_KEYS = {
    "profile": str,
    "seed": int,
    "ops_total": int,
    "ops_terminated": int,
    "invariant_checked": int,
    "invariant_violations": int,
    "peer_dead": int,
    "peer_reconnected": int,
    "recovery_ms": dict,
}

RECOVERY_KEYS = {"samples": int, "p50": NUM, "p95": NUM, "max": NUM}

PROFILES = {"crash_restart", "partition_heal", "loss_burst"}


def fail(msg: str) -> None:
    sys.exit(f"check_chaos: FAIL: {msg}")


def check_keys(obj: dict, spec: dict, where: str) -> None:
    for key, typ in spec.items():
        if key not in obj:
            fail(f"{where}: missing key {key!r}")
        if not isinstance(obj[key], typ):
            fail(f"{where}.{key}: expected {typ}, got {type(obj[key]).__name__}")


def check_recovery(rec: dict, where: str) -> None:
    check_keys(rec, RECOVERY_KEYS, where)
    if rec["samples"] < 0:
        fail(f"{where}: negative sample count")
    if rec["samples"] == 0:
        if any(rec[k] != 0 for k in ("p50", "p95", "max")):
            fail(f"{where}: nonzero percentiles with zero samples")
    elif not 0 < rec["p50"] <= rec["p95"] <= rec["max"]:
        fail(f"{where}: percentiles out of order: {rec}")


def main() -> None:
    args = [a for a in sys.argv[1:] if a != "--smoke"]
    smoke = "--smoke" in sys.argv[1:]
    if len(args) != 1:
        fail("usage: check_chaos.py BENCH_chaos.json [--smoke]")
    with open(args[0]) as f:
        doc = json.load(f)

    check_keys(
        doc,
        {"bench": str, "mode": str, "all_terminated": bool, "recovery_ms": dict, "plans": list},
        "top",
    )
    if doc["bench"] != "chaos":
        fail(f"bench is {doc['bench']!r}")
    if doc["mode"] not in ("smoke", "full"):
        fail(f"mode is {doc['mode']!r}")
    if not doc["all_terminated"]:
        fail("a chaos plan left client ops unterminated")
    check_recovery(doc["recovery_ms"], "top.recovery_ms")

    expect_plans = len(PROFILES) * (1 if smoke else 3)
    if len(doc["plans"]) != expect_plans:
        fail(f"expected {expect_plans} plans, got {len(doc['plans'])}")
    seen = set()
    detected = 0
    for i, plan in enumerate(doc["plans"]):
        where = f"plans[{i}]"
        check_keys(plan, PLAN_KEYS, where)
        if plan["profile"] not in PROFILES:
            fail(f"{where}: unknown profile {plan['profile']!r}")
        seen.add(plan["profile"])
        if plan["ops_terminated"] != plan["ops_total"]:
            fail(
                f"{where} ({plan['profile']}/{plan['seed']}): only"
                f" {plan['ops_terminated']}/{plan['ops_total']} ops terminated"
            )
        if plan["invariant_checked"] < 1:
            fail(f"{where}: no cache entries audited")
        if plan["invariant_violations"] != 0:
            fail(
                f"{where} ({plan['profile']}/{plan['seed']}):"
                f" {plan['invariant_violations']} invariant violations"
            )
        if plan["peer_dead"] != plan["peer_reconnected"]:
            fail(
                f"{where} ({plan['profile']}/{plan['seed']}): unpaired recovery"
                f" events, {plan['peer_dead']} dead vs"
                f" {plan['peer_reconnected']} reconnected"
            )
        detected += plan["peer_dead"]
        check_recovery(plan["recovery_ms"], f"{where}.recovery_ms")
    if seen != PROFILES:
        fail(f"profiles missing from the sweep: {sorted(PROFILES - seen)}")
    if detected < 1:
        fail("no plan exercised the death/reconnect path")
    if doc["recovery_ms"]["samples"] < 1:
        fail("no recovery windows were measured")

    rec = doc["recovery_ms"]
    print(
        f"check_chaos: OK ({doc['mode']}): {len(doc['plans'])} plans, all ops"
        f" terminated, 0 invariant violations, {detected} death/reconnect"
        f" pairs, recovery p50 {rec['p50']:.0f} ms / p95 {rec['p95']:.0f} ms"
        f" over {rec['samples']} windows"
    )


if __name__ == "__main__":
    main()
