#!/usr/bin/env python3
"""Parses the output of `cargo run --example obs_dump` (piped on stdin)
and validates the `/metrics` section as Prometheus text exposition:

* every comment line is `# HELP` or `# TYPE`;
* every sample line is `name[{labels}] value` with a finite numeric
  value and a well-formed metric name;
* every histogram sample (`_bucket`/`_sum`/`_count`) belongs to a family
  announced by a `# TYPE ... histogram` line;
* the per-stage latency histograms are present and the resolve and
  redirect-hop stages recorded at least one sample;
* the `/stats` section is valid JSON;
* the `/flight` section carries at least one span line.

Usage: cargo run --example obs_dump | python3 tools/check_metrics.py
"""
import json
import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)(?P<labels>\{[^}]*\})? (?P<value>\S+)$")
SPAN_RE = re.compile(r"^trace=[0-9a-f]{16} node=\d+ stage=\S+")


def fail(msg: str) -> None:
    sys.exit(f"check_metrics: FAIL: {msg}")


def split_sections(text: str) -> dict:
    sections, current = {}, None
    for line in text.splitlines():
        m = re.match(r"^== (/\w+) ==$", line)
        if m:
            current = m.group(1)
            sections[current] = []
        elif current is not None:
            sections[current].append(line)
    return {k: "\n".join(v) for k, v in sections.items()}


def check_metrics(text: str) -> dict:
    typed, samples = {}, {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                fail(f"bad comment line: {line!r}")
            if parts[1] == "TYPE":
                typed[parts[2]] = parts[3] if len(parts) > 3 else ""
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            fail(f"unparsable sample line: {line!r}")
        value = float(m.group("value"))  # "+Inf" never appears as a value
        if math.isnan(value):
            fail(f"NaN value: {line!r}")
        name = m.group("name")
        if not NAME_RE.match(name):
            fail(f"bad metric name: {name!r}")
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        if name not in typed and base not in typed:
            fail(f"sample {line!r} missing a # TYPE header")
        if base in typed and typed[base] == "histogram" and name.endswith("_bucket"):
            if 'le="' not in (m.group("labels") or ""):
                fail(f"histogram bucket without le label: {line!r}")
        series = name + (m.group("labels") or "")
        samples[series] = value
    return samples


def main() -> None:
    sections = split_sections(sys.stdin.read())
    for want in ("/metrics", "/stats", "/flight"):
        if want not in sections:
            fail(f"missing section {want} (is this obs_dump output?)")

    samples = check_metrics(sections["/metrics"])
    for stage in ("resolve", "redirect_hop"):
        series = f'scalla_stage_ns_count{{stage="{stage}"}}'
        if samples.get(series, 0) < 1:
            fail(f"{series} empty: the run recorded no {stage} samples")

    try:
        stats = json.loads(sections["/stats"])
    except json.JSONDecodeError as e:
        fail(f"/stats is not valid JSON: {e}")
    if not isinstance(stats, dict) or not stats:
        fail("/stats JSON is empty")

    spans = [l for l in sections["/flight"].splitlines() if SPAN_RE.match(l)]
    if not spans:
        fail("/flight carries no span lines")

    print(
        f"check_metrics: OK ({len(samples)} series,"
        f" {len(stats)} stats keys, {len(spans)} flight spans)"
    )


if __name__ == "__main__":
    main()
