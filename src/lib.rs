//! # Scalla — Structured Cluster Architecture for Low Latency Access
//!
//! A from-scratch Rust reproduction of *Scalla: Structured Cluster
//! Architecture for Low Latency Access* (Hanushevsky & Wang, SLAC, IPPS
//! 2012) — the architecture behind XRootD, the distributed file access
//! system of the high-energy-physics community.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`util`] | `scalla-util` | CRC-32, Fibonacci sizing, 64-bit server sets, clocks, histograms |
//! | [`cache`] | `scalla-cache` | **the paper's core contribution**: the cmsd file-location cache (§III) |
//! | [`cluster`] | `scalla-cluster` | membership lifecycle, export paths → `V_m`, 64-ary topology, selection |
//! | [`proto`] | `scalla-proto` | xrootd/cmsd messages and the binary wire codec |
//! | [`simnet`] | `scalla-simnet` | deterministic discrete-event network runtime |
//! | [`node`] | `scalla-node` | cmsd (manager/supervisor) and data-server state machines |
//! | [`obs`] | `scalla-obs` | metrics registry, request-scoped tracing, flight recorder |
//! | [`client`] | `scalla-client` | redirect walking, wait/retry, refresh recovery, prepare |
//! | [`pcache`] | `scalla-pcache` | block-caching proxy data-server tier (§II-B6) |
//! | [`sim`] | `scalla-sim` | whole-cluster harness, live threaded runtime, workloads |
//! | [`baseline`] | `scalla-baseline` | GFS-style central master and other comparators (§V) |
//! | [`qserv`] | `scalla-qserv` | LSST Qserv-style distributed dispatch (§IV-B) |
//!
//! ## Quickstart
//!
//! ```
//! use scalla::prelude::*;
//!
//! // Build a 16-server cluster on the deterministic simulated network.
//! let mut cluster = SimCluster::build(ClusterConfig::flat(16));
//! cluster.seed_file(5, "/store/run1/events.root", 1 << 20, true);
//! cluster.settle(Nanos::from_secs(2));
//!
//! // A client opens the file: manager -> redirect -> server.
//! let client = cluster.add_client(
//!     vec![ClientOp::Open { path: "/store/run1/events.root".into(), write: false }],
//!     Nanos::ZERO,
//! );
//! cluster.start_node(client);
//! cluster.net.run_for(Nanos::from_secs(10));
//!
//! let results = cluster.client_results(client);
//! assert_eq!(results[0].outcome, OpOutcome::Ok);
//! assert_eq!(results[0].server.as_deref(), Some("srv-5"));
//! ```

pub use scalla_baseline as baseline;
pub use scalla_cache as cache;
pub use scalla_client as client;
pub use scalla_cluster as cluster;
pub use scalla_node as node;
pub use scalla_obs as obs;
pub use scalla_pcache as pcache;
pub use scalla_proto as proto;
pub use scalla_qserv as qserv;
pub use scalla_sim as sim;
pub use scalla_simnet as simnet;
pub use scalla_util as util;

/// The most commonly used items in one import.
pub mod prelude {
    pub use scalla_cache::{AccessMode, CacheConfig, NameCache, Resolution, Waiter};
    pub use scalla_client::{ClientOp, Directory, OpOutcome, OpResult};
    pub use scalla_cluster::{SelectionPolicy, TreeSpec};
    pub use scalla_node::{CmsdConfig, CmsdNode, CnsNode, ServerConfig, ServerNode};
    pub use scalla_obs::{Obs, TraceId};
    pub use scalla_pcache::{BlockStore, PcacheConfig, ProxyConfig, ProxyNode};
    pub use scalla_proto::{Addr, ClientMsg, CmsMsg, Msg, ServerMsg};
    pub use scalla_sim::{
        ChaosProfile, ChaosScheduler, ClusterConfig, Fault, FaultPlan, SimCluster,
    };
    pub use scalla_simnet::{LatencyModel, NetCtx, Node, SimNet};
    pub use scalla_util::{Nanos, ServerId, ServerSet};
}
